"""The dmverify S-rule catalog and the CFG-based lint rules.

Syntactic rules (S002/S004/S005/S006 and L001/L002/L006) walk the CFG
node set - each statement of a file is owned by exactly one node, so
nothing is scanned twice (``finally`` duplicates are deduped by the
driver).  Flow rules (S001/S003) live in :mod:`repro.analysis.dataflow`
and are orchestrated by the driver.

Scoping: S001-S004 govern client protocol code and inherit the lint
exemption lists (the dm/sim/obs/bench layers pace engine events, own
the data plane, or replay recovery - their loops and CASes are not
client retries or client locks).  S005 and S006 apply everywhere: a
dead verb or a malformed hook class is a bug in any layer.
"""

from __future__ import annotations

import ast
import re as _re
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

from . import model
from .cfg import BRANCH, CFG, DISPATCH, RETURN, STMT, contains_yield
from .dataflow import RawFinding

# Canonical exemption lists (lint imports these; see lint.py L001/L006
# docs for the rationale).
L001_EXEMPT_PARTS: Tuple[str, ...] = (
    "repro/dm/", "repro/tools/", "repro/san/", "repro/fault/")
L006_EXEMPT_PARTS: Tuple[str, ...] = L001_EXEMPT_PARTS + (
    "repro/sim/", "repro/obs/", "repro/bench/", "repro/ycsb/")

_DATA_PLANE_METHODS = frozenset(
    {"read", "write", "read_u64", "write_u64", "cas_u64", "faa_u64"})

_MEMORY_NAME = _re.compile(r"(^|_)(mem|memory|memories)($|_|\b)")


def is_exempt(rel: str, parts: Tuple[str, ...]) -> bool:
    normalized = rel.replace("\\", "/")
    return any(part in normalized for part in parts)


# ----------------------------------------------------------------------
# Statement ownership: the expressions each CFG node is responsible for
# ----------------------------------------------------------------------

def node_exprs(cfg: CFG) -> Iterator[Tuple[int, ast.AST]]:
    """(line, expr-or-stmt) pairs covering every expression of the CFG's
    statements exactly once (modulo ``finally`` duplication)."""
    for node in cfg.nodes:
        stmt = node.stmt
        if stmt is None:
            continue
        if node.kind == STMT:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                for dec in stmt.decorator_list:
                    yield stmt.lineno, dec
                for default in (stmt.args.defaults
                                + [d for d in stmt.args.kw_defaults
                                   if d is not None]):
                    yield stmt.lineno, default
            elif isinstance(stmt, ast.ClassDef):
                for dec in stmt.decorator_list:
                    yield stmt.lineno, dec
                for base in stmt.bases:
                    yield stmt.lineno, base
                for keyword in stmt.keywords:
                    yield stmt.lineno, keyword.value
            elif isinstance(stmt, (ast.With, ast.AsyncWith)):
                for item in stmt.items:
                    yield stmt.lineno, item.context_expr
            else:
                yield stmt.lineno, stmt
        elif node.kind == BRANCH:
            if isinstance(stmt, (ast.If, ast.While)):
                yield stmt.lineno, stmt.test
            elif isinstance(stmt, (ast.For, ast.AsyncFor)):
                yield stmt.lineno, stmt.iter
                yield stmt.lineno, stmt.target
            elif isinstance(stmt, ast.Match):
                yield stmt.lineno, stmt.subject
        elif node.kind == DISPATCH:
            if isinstance(stmt, ast.Try):
                for handler in stmt.handlers:
                    if handler.type is not None:
                        yield handler.lineno, handler.type
        elif node.kind == RETURN:
            if isinstance(stmt, ast.Return) and stmt.value is not None:
                yield stmt.lineno, stmt.value
        # RAISE exit nodes duplicate a stmt already owned elsewhere.


def _walk_calls(expr: ast.AST) -> Iterator[ast.Call]:
    for sub in ast.walk(expr):
        if isinstance(sub, ast.Call):
            yield sub


def _cfg_env(cfg: CFG) -> Dict[str, Optional[ast.expr]]:
    if cfg.func is not None:
        return model.local_env(cfg.func.body)
    return {}


# ----------------------------------------------------------------------
# Lint rules on the CFG (L001 / L002 / L006)
# ----------------------------------------------------------------------

def _looks_like_memory(node: ast.expr) -> bool:
    return any(_MEMORY_NAME.search(name)
               for name in model.identifiers(node))


def lint_rules(cfgs: Sequence[CFG], l001_exempt: bool,
               l006_exempt: bool) -> List[RawFinding]:
    findings: List[RawFinding] = []
    for cfg in cfgs:
        for line, owned in node_exprs(cfg):
            if not l001_exempt:
                for call in _walk_calls(owned):
                    if isinstance(call.func, ast.Attribute) \
                            and call.func.attr in _DATA_PLANE_METHODS \
                            and _looks_like_memory(call.func.value):
                        findings.append(RawFinding(
                            "L001", call.lineno,
                            f"direct Memory.{call.func.attr}() bypasses "
                            f"the executors (and DMSan); go through "
                            f"verb generators, or pragma a "
                            f"control-plane exception"))
        for node in cfg.nodes:
            stmt = node.stmt
            # L002: discarded `yield CasOp(...)` result.
            if node.kind == STMT and isinstance(stmt, ast.Expr) \
                    and isinstance(stmt.value, ast.Yield) \
                    and stmt.value.value is not None:
                yielded = stmt.value.value
                if isinstance(yielded, ast.Call) \
                        and isinstance(yielded.func, ast.Name) \
                        and yielded.func.id == "CasOp":
                    findings.append(RawFinding(
                        "L002", stmt.lineno,
                        "CAS result discarded: the swapped flag must "
                        "be consumed (an unchecked CAS is a lock that "
                        "may have silently failed)"))
            # L006: bare retry loop over a literal range.
            if not l006_exempt and node.kind == BRANCH \
                    and isinstance(stmt, ast.For) \
                    and isinstance(stmt.iter, ast.Call) \
                    and isinstance(stmt.iter.func, ast.Name) \
                    and stmt.iter.func.id == "range" \
                    and stmt.iter.args \
                    and all(isinstance(a, ast.Constant)
                            for a in stmt.iter.args):
                yields_verbs = any(
                    isinstance(sub, (ast.Yield, ast.YieldFrom))
                    for child in stmt.body for sub in ast.walk(child))
                if yields_verbs:
                    findings.append(RawFinding(
                        "L006", stmt.lineno,
                        "bare retry loop: a bounded loop that yields "
                        "verbs must take its bound from RetryPolicy "
                        "(see repro.fault.retry), or pragma an "
                        "intrinsic protocol bound with a "
                        "justification"))
    return findings


# ----------------------------------------------------------------------
# S002: lock-acquiring CAS without a lease tag
# ----------------------------------------------------------------------

def s002_rules(cfgs: Sequence[CFG]) -> List[RawFinding]:
    findings: List[RawFinding] = []
    for cfg in cfgs:
        env = _cfg_env(cfg)
        for _line, owned in node_exprs(cfg):
            for call in _walk_calls(owned):
                if model.call_name(call) != "CasOp":
                    continue
                if not model.is_acquire_cas(call, env):
                    continue
                if model.lease_kind(call) != "none":
                    continue
                addr = (model.unparse(call.args[0])
                        if call.args else "<addr>")
                findings.append(RawFinding(
                    "S002", call.lineno,
                    f"lock-acquiring CAS on `{addr}` carries no lease "
                    f"tag: crash recovery cannot reclaim an untagged "
                    f"lock - pass lease=(...) as repro.core.lock does"))
    return findings


# ----------------------------------------------------------------------
# S004: retry loop not routed through RetryPolicy
# ----------------------------------------------------------------------

def _const_int(expr: ast.expr,
               env: Dict[str, Optional[ast.expr]]) -> Optional[int]:
    resolved = model.resolve_expr(expr, env)
    if isinstance(resolved, ast.Constant) \
            and isinstance(resolved.value, int) \
            and not isinstance(resolved.value, bool):
        return resolved.value
    return None


def _body_yields(body: Sequence[ast.stmt]) -> bool:
    return any(contains_yield(child) for child in body)


def s004_rules(cfgs: Sequence[CFG]) -> List[RawFinding]:
    findings: List[RawFinding] = []
    for cfg in cfgs:
        env = _cfg_env(cfg)
        for node in cfg.nodes:
            stmt = node.stmt
            if node.kind != BRANCH or stmt is None:
                continue
            if isinstance(stmt, ast.For):
                finding = _s004_for(stmt, env)
            elif isinstance(stmt, ast.While):
                finding = _s004_while(stmt, env)
            else:
                finding = None
            if finding is not None:
                findings.append(finding)
    return findings


def _s004_for(stmt: ast.For,
              env: Dict[str, Optional[ast.expr]]) -> Optional[
                  RawFinding]:
    it = stmt.iter
    if not (isinstance(it, ast.Call) and isinstance(it.func, ast.Name)
            and it.func.id == "range" and it.args):
        return None
    bounds = [_const_int(arg, env) for arg in it.args]
    if any(bound is None for bound in bounds):
        return None
    if not _body_yields(stmt.body):
        return None
    bound = bounds[1] if len(bounds) > 1 else bounds[0]
    return RawFinding(
        "S004", stmt.lineno,
        f"retry loop with a magic bound ({bound}): a bounded loop "
        f"that yields verbs must take its budget from RetryPolicy "
        f"(repro.fault.retry), or pragma an intrinsic protocol bound")


def _s004_while(stmt: ast.While,
                env: Dict[str, Optional[ast.expr]]) -> Optional[
                    RawFinding]:
    test = stmt.test
    if not (isinstance(test, ast.Compare) and len(test.ops) == 1
            and isinstance(test.ops[0], (ast.Lt, ast.LtE, ast.Gt,
                                         ast.GtE))):
        return None
    left, right = test.left, test.comparators[0]
    counter: Optional[str] = None
    bound: Optional[int] = None
    for name_side, const_side in ((left, right), (right, left)):
        if isinstance(name_side, ast.Name):
            value = _const_int(const_side, env)
            if value is not None:
                counter, bound = name_side.id, value
                break
    if counter is None or bound is None:
        return None
    increments = False
    for child in stmt.body:
        for sub in ast.walk(child):
            if isinstance(sub, ast.AugAssign) \
                    and isinstance(sub.target, ast.Name) \
                    and sub.target.id == counter:
                increments = True
            elif isinstance(sub, ast.Assign) \
                    and len(sub.targets) == 1 \
                    and isinstance(sub.targets[0], ast.Name) \
                    and sub.targets[0].id == counter \
                    and counter in model.names_loaded(sub.value):
                increments = True
    if not increments or not _body_yields(stmt.body):
        return None
    return RawFinding(
        "S004", stmt.lineno,
        f"retry loop with a magic bound (`{counter}` vs {bound}): a "
        f"bounded loop that yields verbs must take its budget from "
        f"RetryPolicy (repro.fault.retry), or pragma an intrinsic "
        f"protocol bound")


# ----------------------------------------------------------------------
# S005: verb constructed but never yielded
# ----------------------------------------------------------------------

def _is_verb_value(value: ast.expr) -> bool:
    if isinstance(value, ast.Call):
        return model.call_name(value) in (model.VERB_NAMES
                                          | {model.BATCH_NAME})
    if isinstance(value, (ast.List, ast.Tuple)):
        return bool(value.elts) and all(
            isinstance(elt, ast.Call)
            and model.call_name(elt) in model.VERB_NAMES
            for elt in value.elts)
    if isinstance(value, ast.ListComp):
        return (isinstance(value.elt, ast.Call)
                and model.call_name(value.elt) in model.VERB_NAMES)
    return False


def s005_rules(cfgs: Sequence[CFG]) -> List[RawFinding]:
    findings: List[RawFinding] = []
    for cfg in cfgs:
        if cfg.func is None:
            continue  # module/class level: a verb constant is not dead
        used = model.names_loaded(cfg.func)
        for node in cfg.nodes:
            stmt = node.stmt
            if node.kind != STMT or stmt is None:
                continue
            if isinstance(stmt, ast.Expr) \
                    and isinstance(stmt.value, ast.Call) \
                    and _is_verb_value(stmt.value):
                name = model.call_name(stmt.value)
                findings.append(RawFinding(
                    "S005", stmt.lineno,
                    f"{name}(...) constructed and discarded: a verb "
                    f"that is never yielded never reaches the "
                    f"executor, the fault injector, or the tracer"))
            elif isinstance(stmt, ast.Assign) \
                    and len(stmt.targets) == 1 \
                    and isinstance(stmt.targets[0], ast.Name) \
                    and _is_verb_value(stmt.value) \
                    and stmt.targets[0].id not in used:
                target = stmt.targets[0].id
                findings.append(RawFinding(
                    "S005", stmt.lineno,
                    f"verb(s) assigned to `{target}` but `{target}` is "
                    f"never yielded or read: the op silently never "
                    f"executes"))
    return findings


# ----------------------------------------------------------------------
# S006: attach_* hook classes must conform to the executor interface
# ----------------------------------------------------------------------

# Required (method -> (positional args excluding self, required
# keywords the call sites pass)).  Derived from the unconditional call
# sites in repro/dm/{rdma,cluster,memory}.py.
_MONITOR_IFACE: Dict[str, Tuple[int, Tuple[str, ...]]] = {
    "bind_clock": (1, ()),
    "on_issue": (3, ()),
    "on_apply": (3, ()),
    "on_complete": (2, ()),
    "on_alloc": (4, ()),
    "on_free": (4, ()),
    "on_retire": (4, ()),
}
_TRACER_IFACE: Dict[str, Tuple[int, Tuple[str, ...]]] = {
    "attach_resources": (1, ()),
    "op_begin": (3, ()),
    "op_end": (3, ()),          # status is passed positionally
    "on_verb": (4, ("fault",)),
    "on_round_trip": (1, ()),
    "on_fault": (4, ()),
    "tag_verb": (2, ()),
}
_LEASE_IFACE: Dict[str, Tuple[int, Tuple[str, ...]]] = {
    "on_verb": (4, ()),
}
_IFACES: Dict[str, Dict[str, Tuple[int, Tuple[str, ...]]]] = {
    "monitor": _MONITOR_IFACE,
    "tracer": _TRACER_IFACE,
    "lease": _LEASE_IFACE,
}


def _class_methods(cls: ast.ClassDef) -> Dict[str, ast.FunctionDef]:
    methods: Dict[str, ast.FunctionDef] = {}
    for stmt in cls.body:
        if isinstance(stmt, ast.FunctionDef):
            methods[stmt.name] = stmt
    return methods


def _explicit_role(cls: ast.ClassDef) -> Optional[str]:
    for stmt in cls.body:
        if isinstance(stmt, ast.Assign) and len(stmt.targets) == 1 \
                and isinstance(stmt.targets[0], ast.Name) \
                and stmt.targets[0].id == "DMVERIFY_ROLE" \
                and isinstance(stmt.value, ast.Constant) \
                and isinstance(stmt.value.value, str):
            return stmt.value.value
    return None


def _attach_roles(tree: ast.Module) -> Dict[str, str]:
    """class name -> role, from ``attach_monitor(X())`` style calls."""
    env: Dict[str, str] = {}
    for sub in ast.walk(tree):
        if isinstance(sub, ast.Assign) and len(sub.targets) == 1 \
                and isinstance(sub.targets[0], ast.Name) \
                and isinstance(sub.value, ast.Call) \
                and isinstance(sub.value.func, ast.Name):
            env[sub.targets[0].id] = sub.value.func.id
    roles: Dict[str, str] = {}
    for sub in ast.walk(tree):
        if not isinstance(sub, ast.Call):
            continue
        name = model.call_name(sub)
        if name == "attach_monitor":
            role = "monitor"
        elif name == "attach_tracer":
            role = "tracer"
        else:
            continue
        for arg in sub.args:
            if isinstance(arg, ast.Call) \
                    and isinstance(arg.func, ast.Name):
                roles[arg.func.id] = role
            elif isinstance(arg, ast.Name) and arg.id in env:
                roles[env[arg.id]] = role
    return roles


def _role_of(cls: ast.ClassDef, attach_roles: Dict[str, str],
             methods: Dict[str, ast.FunctionDef]) -> Optional[str]:
    explicit = _explicit_role(cls)
    if explicit in _IFACES:
        return explicit
    if cls.name in attach_roles:
        return attach_roles[cls.name]
    if cls.name.endswith("Monitor"):
        return "monitor"
    if cls.name.endswith("Tracer"):
        return "tracer"
    if "Lease" in cls.name and "on_verb" in methods:
        return "lease"
    return None


def _accepts(fn: ast.FunctionDef, n_pos: int,
             keywords: Tuple[str, ...]) -> Optional[str]:
    """None when ``fn(self, *<n_pos args>, **<keywords>)`` is callable;
    otherwise a short description of the mismatch."""
    args = fn.args
    positional = list(args.posonlyargs) + list(args.args)
    is_static = any(isinstance(dec, ast.Name) and dec.id == "staticmethod"
                    for dec in fn.decorator_list)
    if not is_static and positional \
            and positional[0].arg in ("self", "cls"):
        positional = positional[1:]
    n_params = len(positional)
    n_defaults = len(args.defaults)
    min_required = n_params - n_defaults
    if n_pos < min_required:
        return (f"takes at least {min_required} argument(s), call "
                f"sites pass {n_pos}")
    if n_pos > n_params and args.vararg is None:
        return (f"takes at most {n_params} argument(s), call sites "
                f"pass {n_pos}")
    param_names = {p.arg for p in positional} | {
        k.arg for k in args.kwonlyargs}
    for keyword in keywords:
        if args.kwarg is None and keyword not in param_names:
            return f"does not accept keyword `{keyword}`"
    missing = {k.arg for k, d in zip(args.kwonlyargs, args.kw_defaults)
               if d is None} - set(keywords)
    if missing:
        return ("requires keyword-only argument(s) "
                + ", ".join(f"`{m}`" for m in sorted(missing))
                + " the call sites never pass")
    return None


def s006_rules(tree: ast.Module) -> List[RawFinding]:
    findings: List[RawFinding] = []
    attach_roles = _attach_roles(tree)
    local_classes = {sub.name for sub in ast.walk(tree)
                     if isinstance(sub, ast.ClassDef)}
    for cls in ast.walk(tree):
        if not isinstance(cls, ast.ClassDef):
            continue
        methods = _class_methods(cls)
        role = _role_of(cls, attach_roles, methods)
        if role is None:
            continue
        unresolvable_base = any(
            not (isinstance(base, ast.Name)
                 and (base.id in local_classes or base.id == "object"))
            for base in cls.bases)
        if unresolvable_base:
            continue  # inherited methods are invisible to us
        for base in cls.bases:
            if isinstance(base, ast.Name) and base.id in local_classes:
                # fold one level of local inheritance
                for sub in ast.walk(tree):
                    if isinstance(sub, ast.ClassDef) \
                            and sub.name == base.id:
                        for name, fn in _class_methods(sub).items():
                            methods.setdefault(name, fn)
        problems: List[str] = []
        for name, (n_pos, keywords) in sorted(_IFACES[role].items()):
            fn = methods.get(name)
            if fn is None:
                problems.append(f"missing {name}()")
                continue
            mismatch = _accepts(fn, n_pos, keywords)
            if mismatch is not None:
                problems.append(f"{name}() {mismatch}")
        if problems:
            findings.append(RawFinding(
                "S006", cls.lineno,
                f"class {cls.name} plays the {role} hook role but "
                f"does not conform to the executor callback "
                f"interface: " + "; ".join(problems)))
    return findings
