"""MN-side construction of the one-sided extendible hash table.

Building the table is a control-plane action (it happens when an index is
created), so it writes simulated memory directly; all data-plane access
afterwards goes through :class:`repro.race.client.RaceClient` generators.
"""
# lint: disable-file=L001

from __future__ import annotations

from ..dm.cluster import Cluster
from ..dm.memory import addr_offset
from ..util.bits import u64_to_bytes
from .layout import DIR_ENTRY, GROUP_HEADER, META, TableInfo, TableParams

HASH_TABLE_CATEGORY = "hash_table"


def _empty_segment(params: TableParams, local_depth: int) -> bytes:
    header = GROUP_HEADER.pack(local_depth=local_depth, locked=0, version=0)
    group = u64_to_bytes(header) + bytes(params.slots_per_group * 8)
    return group * params.groups_per_segment


def allocate_segment(cluster: Cluster, mn_id: int, params: TableParams,
                     local_depth: int) -> int:
    """Allocate and zero-init one segment; returns its global address."""
    addr = cluster.alloc(mn_id, params.segment_size, HASH_TABLE_CATEGORY)
    cluster.memories[mn_id].write(addr_offset(addr),
                                  _empty_segment(params, local_depth))
    return addr


def create_table(cluster: Cluster, mn_id: int,
                 params: TableParams) -> TableInfo:
    """Create an empty table on ``mn_id``: meta word, preallocated
    directory (sized for ``max_depth``), and the initial segments."""
    memory = cluster.memories[mn_id]
    meta_addr = cluster.alloc(mn_id, 8, HASH_TABLE_CATEGORY)
    dir_addr = cluster.alloc(mn_id, params.directory_size,
                             HASH_TABLE_CATEGORY)
    depth = params.initial_depth
    memory.write_u64(addr_offset(meta_addr),
                     META.pack(global_depth=depth, lock=0))
    # One segment per initial directory slot, mirrored across the
    # preallocated (max-depth) directory so stale-depth reads stay valid.
    initial_segments = 1 << depth
    seg_addrs = [allocate_segment(cluster, mn_id, params, depth)
                 for _ in range(initial_segments)]
    for slot in range(params.directory_slots):
        seg = seg_addrs[slot & (initial_segments - 1)]
        word = DIR_ENTRY.pack(addr=seg, local_depth=depth, occupied=1)
        memory.write_u64(addr_offset(dir_addr) + slot * 8, word)
    return TableInfo(mn_id=mn_id, meta_addr=meta_addr, dir_addr=dir_addr,
                     params=params)


def table_bytes(cluster: Cluster, mn_id: int) -> int:
    """Net bytes the hash table occupies on one MN."""
    return cluster.memories[mn_id].allocated_by_category.get(
        HASH_TABLE_CATEGORY, 0)
