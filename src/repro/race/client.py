"""CN-side client of the one-sided extendible hash table.

All methods are op generators (see :mod:`repro.dm.rdma`): they yield RDMA
verbs and can be driven untimed (:class:`DirectExecutor`) or under the
simulation clock (:class:`SimExecutor`).

Concurrency protocol
--------------------

* **Lookup**: one READ of the key's bucket group.  A ``locked`` header
  means a split is migrating this segment - back off and retry.  A header
  ``local_depth`` differing from the cached directory entry means the
  cache is stale - refresh and retry.
* **Insert**: READ the group, pick a free slot, then a doorbell batch of
  [CAS(slot, 0, entry), READ(header)].  The two verbs target the same MN
  and execute in posted order, so the header read observes the post-CAS
  state: if the version moved or the group is locked, a split raced the
  insert and the entry may have landed in a stale segment - the client
  undoes the CAS and retries.
* **Split** (triggered by inserting into a full group): lock every group
  header in the segment with CASes, re-read the segment, write a fresh
  sibling segment containing the entries whose hash bit ``local_depth``
  is set (recoverable from fp2 alone - see :mod:`repro.race.layout`),
  repoint every mirrored directory slot, then clear migrated entries and
  unlock with bumped versions.

The client keeps a **directory cache** (the paper sizes it at 2-5 % of
the filter cache); it indexes the preallocated max-depth directory, so
stale global depth is never an issue - only per-entry staleness, healed
on demand.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from ..art.layout import HashEntry
from ..dm.rdma import Batch, CasOp, LocalCompute, ReadOp, WriteOp
from ..errors import HashTableError, InjectedFault, RetryLimitExceeded
from ..fault.retry import DEFAULT_RETRY, RetryPolicy
from ..util.bits import u64_from_bytes, u64_to_bytes
from .layout import (
    DIR_ENTRY,
    ENTRY_SIZE,
    GROUP_HEADER,
    HEADER_SIZE,
    TableInfo,
    fp2_of,
    group_index,
    key_hash,
    segment_index,
)

@dataclass
class DirCacheEntry:
    seg_addr: int
    local_depth: int


_OCC = 1 << 63


@dataclass
class GroupView:
    """A decoded bucket group (entry words decoded lazily - hot path)."""

    addr: int
    local_depth: int
    locked: bool
    version: int
    words: Tuple[int, ...]            # slots_per_group raw entry words

    @property
    def entries(self) -> List[HashEntry]:
        return [HashEntry.unpack(w) for w in self.words]

    def slot_addr(self, index: int) -> int:
        return self.addr + HEADER_SIZE + index * ENTRY_SIZE

    def matches(self, fp2: int) -> List[Tuple[int, HashEntry]]:
        return [(self.slot_addr(i), HashEntry.unpack(w))
                for i, w in enumerate(self.words)
                if w & _OCC and ((w >> 48) & 0xFFF) == fp2]

    def free_index(self) -> Optional[int]:
        for i, w in enumerate(self.words):
            if not w & _OCC:
                return i
        return None


_GROUP_STRUCTS: Dict[int, struct.Struct] = {}


def _group_struct(slots_per_group: int) -> struct.Struct:
    """Header+slots unpacker, cached at module scope: ``struct.Struct``
    objects cannot be deepcopied, so clients must not hold one."""
    unpacker = _GROUP_STRUCTS.get(slots_per_group)
    if unpacker is None:
        unpacker = _GROUP_STRUCTS[slots_per_group] = struct.Struct(
            f"<{1 + slots_per_group}Q")
    return unpacker


class RaceClient:
    """One client's view of one MN-resident table."""

    def __init__(self, info: TableInfo, allocate_segment,
                 retry: RetryPolicy | None = None):
        """``allocate_segment(local_depth) -> addr`` provisions a zeroed
        segment on the table's MN (control-plane; see DESIGN.md)."""
        self.info = info
        self.params = info.params
        self._allocate_segment = allocate_segment
        self.retry = retry if retry is not None else DEFAULT_RETRY
        self.retry.validate()
        self._dir_cache: Dict[int, DirCacheEntry] = {}
        self.splits = 0
        self.stale_refreshes = 0

    def counters(self):
        """Snapshot into the shared :class:`repro.obs.Counters` shape."""
        from ..obs.counters import Counters
        return Counters({"splits": self.splits,
                         "stale_refreshes": self.stale_refreshes,
                         "directory_cache_entries": len(self._dir_cache)})

    # -- directory cache ------------------------------------------------
    def directory_cache_bytes(self) -> int:
        """CN-side memory the directory cache occupies (8 B per entry)."""
        return 8 * len(self._dir_cache)

    def _dir_index(self, h: int) -> int:
        return segment_index(h, self.params.max_depth)

    def _refresh_dir(self, h: int):
        idx = self._dir_index(h)
        word = u64_from_bytes(
            (yield ReadOp(self.info.dir_addr + idx * 8, 8)))
        fields = DIR_ENTRY.unpack(word)
        if not fields["occupied"]:
            # Under fault injection a crashed/blanked MN can wipe the
            # directory; report it as a retryable-path failure rather
            # than a protocol bug so callers contain it uniformly.
            raise RetryLimitExceeded(f"unoccupied directory slot {idx}",
                                     addr=self.info.dir_addr + idx * 8)
        entry = DirCacheEntry(fields["addr"], fields["local_depth"])
        self._dir_cache[idx] = entry
        self.stale_refreshes += 1
        return entry

    def _locate(self, h: int):
        idx = self._dir_index(h)
        entry = self._dir_cache.get(idx)
        if entry is None:
            entry = yield from self._refresh_dir(h)
        return entry

    def _group_addr(self, seg_addr: int, h: int) -> int:
        g = group_index(h, self.params.groups_per_segment)
        return seg_addr + self.params.group_offset(g)

    # -- group IO ------------------------------------------------------
    def _parse_group(self, addr: int, data: bytes) -> GroupView:
        words = _group_struct(self.params.slots_per_group).unpack_from(
            data, 0)
        header = words[0]
        # Hand-decoded GROUP_HEADER: local_depth(8) | locked(1) | version(40).
        return GroupView(addr, header & 0xFF, bool((header >> 8) & 1),
                         (header >> 9) & ((1 << 40) - 1), words[1:])

    def _read_group(self, h: int):
        """Read + validate the group for ``h``; retries around splits
        (and, under fault injection, around dropped/NAKed reads)."""
        cached = None
        for _ in range(self.retry.max_retries):
            try:
                cached = yield from self._locate(h)
                addr = self._group_addr(cached.seg_addr, h)
                group = self._parse_group(
                    addr, (yield ReadOp(addr, self.params.group_size)))
                if group.locked:
                    yield LocalCompute(self.retry.flat_delay())
                    yield from self._refresh_dir(h)
                    continue
                if group.local_depth != cached.local_depth:
                    yield from self._refresh_dir(h)
                    continue
                return group
            except InjectedFault:
                yield LocalCompute(self.retry.flat_delay())
                continue
        raise RetryLimitExceeded(
            "group read kept racing splits",
            addr=None if cached is None
            else self._group_addr(cached.seg_addr, h))

    # -- public operations ---------------------------------------------
    def lookup(self, key: bytes):
        """All entries whose fp2 matches ``key`` -> [(slot_addr, entry)]."""
        h = key_hash(key, self.params.seed)
        group = yield from self._read_group(h)
        return group.matches(fp2_of(h))

    def insert(self, key: bytes, entry: HashEntry):
        """Install ``entry`` for ``key``; returns the slot address."""
        h = key_hash(key, self.params.seed)
        if entry.fp2 != fp2_of(h):
            raise HashTableError("entry fp2 inconsistent with key hash")
        for _ in range(self.retry.max_retries):
            try:
                group = yield from self._read_group(h)
                free = group.free_index()
                if free is None:
                    yield from self._split(h)
                    continue
                slot_addr = group.slot_addr(free)
                cas_result, header_bytes = yield Batch([
                    CasOp(slot_addr, 0, entry.pack()),
                    ReadOp(group.addr, HEADER_SIZE),
                ])
                swapped, _old = cas_result
                if not swapped:
                    continue  # another insert took the slot
                fields = GROUP_HEADER.unpack(u64_from_bytes(header_bytes))
                if fields["locked"] or fields["version"] != group.version:
                    # A split raced us; our entry may now be in the wrong
                    # segment.  Undo and retry through the fresh directory.
                    undone, _ = yield CasOp(slot_addr, entry.pack(), 0)
                    yield from self._refresh_dir(h)
                    if not undone:
                        # The split migrated our entry to the sibling
                        # segment before we could take it back: the insert
                        # is durably installed there.  Retrying would plant
                        # a duplicate, so find the entry's new home instead.
                        group = yield from self._read_group(h)
                        for new_slot, moved in group.matches(entry.fp2):
                            if moved.pack() == entry.pack():
                                return new_slot
                        # A concurrent delete removed it in the window; the
                        # retry loop reinstalls it.
                    continue
                return slot_addr
            except InjectedFault:
                yield LocalCompute(self.retry.flat_delay())
                continue
        raise RetryLimitExceeded(f"insert of {key!r} exceeded retries",
                                 addr=self.info.dir_addr)

    def cas_entry(self, slot_addr: int, old: HashEntry, new: HashEntry):
        """Atomically replace an entry in place (node type switches)."""
        swapped, _ = yield CasOp(slot_addr, old.pack(), new.pack())
        return swapped

    def delete(self, key: bytes, node_addr: int):
        """Remove the entry for ``key`` pointing at ``node_addr``."""
        h = key_hash(key, self.params.seed)
        slot_addr = None
        for _ in range(self.retry.max_retries):
            try:
                group = yield from self._read_group(h)
                targets = [(sa, e) for sa, e in group.matches(fp2_of(h))
                           if e.addr == node_addr]
                if not targets:
                    return False
                slot_addr, entry = targets[0]
                swapped, _ = yield CasOp(slot_addr, entry.pack(), 0)
                if swapped:
                    return True
            except InjectedFault:
                yield LocalCompute(self.retry.flat_delay())
                continue
        raise RetryLimitExceeded(f"delete of {key!r} exceeded retries",
                                 addr=slot_addr)

    # -- piggybacked single-shot insert ------------------------------------
    def cached_group_location(self, key: bytes):
        """(group_addr, h, local_depth) from the directory cache only;
        None when cold.  Lets callers piggyback the group read onto an
        unrelated doorbell batch (no network, no staleness risk beyond
        what probe_parse/insert_into_group re-verify)."""
        h = key_hash(key, self.params.seed)
        cached = self._dir_cache.get(self._dir_index(h))
        if cached is None:
            return None
        return self._group_addr(cached.seg_addr, h), h, cached.local_depth

    def insert_into_group(self, key: bytes, entry: HashEntry,
                          group: GroupView):
        """One CAS attempt into a group read earlier (piggybacked).

        Returns True if the entry was installed; False sends the caller
        to the full :meth:`insert` path.
        """
        free = group.free_index()
        if free is None:
            return False
        slot_addr = group.slot_addr(free)
        cas_result, header_bytes = yield Batch([
            CasOp(slot_addr, 0, entry.pack()),
            ReadOp(group.addr, HEADER_SIZE),
        ])
        swapped, _old = cas_result
        if not swapped:
            return False
        fields = GROUP_HEADER.unpack(u64_from_bytes(header_bytes))
        if fields["locked"] or fields["version"] != group.version:
            undone, _ = yield CasOp(slot_addr, entry.pack(), 0)
            if not undone:
                # The racing split migrated the entry to the sibling
                # segment: it is durably installed, so reporting failure
                # (and sending the caller to the full insert path) would
                # plant a duplicate.
                return True
            return False
        return True

    # -- batched probing ---------------------------------------------------
    def probe_prepare(self, key: bytes):
        """Resolve the bucket-group address for ``key`` (warms the
        directory cache).  Returns (group_addr, h, cached_local_depth);
        callers batch the actual group reads across many keys/tables."""
        h = key_hash(key, self.params.seed)
        cached = yield from self._locate(h)
        return self._group_addr(cached.seg_addr, h), h, cached.local_depth

    def probe_read_op(self, group_addr: int) -> ReadOp:
        return ReadOp(group_addr, self.params.group_size)

    def probe_parse(self, group_addr: int, data: bytes, h: int,
                    cached_local_depth: int):
        """Parse a batched group read.  Returns the fp2 matches, or None
        if the group was locked/stale (caller falls back to lookup())."""
        group = self._parse_group(group_addr, data)
        if group.locked or group.local_depth != cached_local_depth:
            return None
        return group.matches(fp2_of(h))

    # -- split -----------------------------------------------------------
    def _segment_groups(self, seg_addr: int, data: bytes) -> List[GroupView]:
        return [self._parse_group(seg_addr + self.params.group_offset(g),
                                  data[self.params.group_offset(g):
                                       self.params.group_offset(g + 1)])
                for g in range(self.params.groups_per_segment)]

    def _split(self, h: int):
        """Split the segment containing ``h``; returns when done or after
        losing the lock race (caller simply retries its insert)."""
        params = self.params
        cached = yield from self._locate(h)
        seg_addr, local_depth = cached.seg_addr, cached.local_depth
        if local_depth >= params.max_depth:
            raise HashTableError(
                "table reached max depth; increase initial_depth or geometry")
        # Phase 1: lock every group in the segment.
        seg_data = yield ReadOp(seg_addr, params.segment_size)
        groups = self._segment_groups(seg_addr, seg_data)
        if any(g.locked for g in groups) or \
                groups[0].local_depth != local_depth:
            yield LocalCompute(self.retry.flat_delay())
            yield from self._refresh_dir(h)
            return
        lock_results = yield Batch([
            CasOp(g.addr,
                  GROUP_HEADER.pack(local_depth=local_depth, locked=0,
                                    version=g.version),
                  GROUP_HEADER.pack(local_depth=local_depth, locked=1,
                                    version=g.version + 1),
                  lease=("hash", seg_addr, local_depth))
            for g in groups
        ])
        won = [swapped for swapped, _ in lock_results]
        if not all(won):
            # Lost the race: roll back the headers we did lock.
            undo = [CasOp(g.addr,
                          GROUP_HEADER.pack(local_depth=local_depth, locked=1,
                                            version=g.version + 1),
                          GROUP_HEADER.pack(local_depth=local_depth, locked=0,
                                            version=g.version),
                          lease=("release",))
                    for g, w in zip(groups, won) if w]
            if undo:
                yield Batch(undo)
            yield LocalCompute(self.retry.flat_delay())
            return
        # Phase 2: stable re-read under the lock.
        seg_data = yield ReadOp(seg_addr, params.segment_size)
        groups = self._segment_groups(seg_addr, seg_data)
        new_depth = local_depth + 1
        move_bit = 1 << local_depth
        # Phase 3: build and publish the sibling segment.
        new_seg_addr = self._allocate_segment(new_depth)
        new_seg = bytearray()
        moved_slots: List[int] = []
        for group in groups:
            blob = bytearray(u64_to_bytes(GROUP_HEADER.pack(
                local_depth=new_depth, locked=0, version=0)))
            for i, entry in enumerate(group.entries):
                if entry.occupied and entry.fp2 & move_bit:
                    blob += u64_to_bytes(entry.pack())
                    moved_slots.append(group.slot_addr(i))
                else:
                    blob += bytes(8)
            blob += bytes(params.group_size - len(blob))
            new_seg += blob
        yield WriteOp(new_seg_addr, bytes(new_seg))
        # Phase 4: repoint mirrored directory slots (we hold the lock).
        old_pattern = segment_index(h, local_depth)
        new_pattern = old_pattern | move_bit
        stride = 1 << new_depth
        dir_writes = []
        for idx in range(new_pattern, params.directory_slots, stride):
            word = DIR_ENTRY.pack(addr=new_seg_addr, local_depth=new_depth,
                                  occupied=1)
            dir_writes.append(WriteOp(self.info.dir_addr + idx * 8,
                                      u64_to_bytes(word)))
            self._dir_cache[idx] = DirCacheEntry(new_seg_addr, new_depth)
        for idx in range(old_pattern, params.directory_slots, stride):
            word = DIR_ENTRY.pack(addr=seg_addr, local_depth=new_depth,
                                  occupied=1)
            dir_writes.append(WriteOp(self.info.dir_addr + idx * 8,
                                      u64_to_bytes(word)))
            self._dir_cache[idx] = DirCacheEntry(seg_addr, new_depth)
        yield Batch(dir_writes)
        # Phase 5: clear migrated entries, then unlock with bumped depth.
        finalize = [WriteOp(slot, bytes(8)) for slot in moved_slots]
        finalize += [WriteOp(g.addr, u64_to_bytes(GROUP_HEADER.pack(
            local_depth=new_depth, locked=0, version=g.version + 2)),
            lease=("release",))
            for g in groups]
        yield Batch(finalize)
        self.splits += 1

    # -- crash recovery ----------------------------------------------------
    def recover_segment(self, seg_addr: int, stale_depth: int):
        """Repair a split whose owner crashed mid-protocol.

        Called by :class:`repro.recover.RecoveryManager` for a segment
        with expired ``("hash", seg_addr, depth)`` leases.  The phase the
        dead client reached is recoverable from remote state alone:

        * no group header locked - the split finished (or never locked);
          nothing to do;
        * directory slot ``new_pattern`` already points at a sibling at
          ``new_depth`` - phase 4 started, and because batch members
          apply in posted order the sibling segment (phase 3) is fully
          published: **roll forward** (finish the directory writes, clear
          migrated entries, unlock at ``new_depth``);
        * otherwise no reader can have observed the sibling: **roll
          back** (unlock every locked header at its old depth).

        Ownership is taken with a fencing CAS on the first locked header
        (version bump); losing it means the owner is alive or another
        recoverer won - return ``"raced"`` and let the caller retry.
        Returns one of ``"clean"``, ``"raced"``, ``"rolled_back"``,
        ``"rolled_forward"``.
        """
        params = self.params
        seg_data = yield ReadOp(seg_addr, params.segment_size)
        groups = self._segment_groups(seg_addr, seg_data)
        locked = [g for g in groups if g.locked]
        if not locked:
            return "clean"
        old_depth = locked[0].local_depth
        if old_depth != stale_depth:
            # The crashed split already finished and a *later* generation
            # holds these locks; it is not ours to repair.
            return "raced"
        new_depth = old_depth + 1
        move_bit = 1 << old_depth
        # Fence: bump the first locked header's version under CAS.  This
        # both excludes a still-live owner (its phase-5 unlock CAS-free
        # writes would now collide harmlessly with ours, but its undo
        # CASes would fail) and grants this client DMSan ownership of the
        # hash-table category for the plain repair writes below.
        fence = locked[0]
        fence_word = GROUP_HEADER.pack(local_depth=old_depth, locked=1,
                                       version=fence.version + 1)
        swapped, _ = yield CasOp(
            fence.addr,
            GROUP_HEADER.pack(local_depth=old_depth, locked=1,
                              version=fence.version),
            fence_word)
        if not swapped:
            return "raced"
        fence_version = fence.version + 1
        # Read the whole directory: mirrored slots pointing at seg_addr
        # give old_pattern; slot new_pattern decides forward vs back.
        dir_bytes = yield ReadOp(self.info.dir_addr,
                                 params.directory_slots * 8)
        entries = [DIR_ENTRY.unpack(u64_from_bytes(dir_bytes[i * 8:
                                                             i * 8 + 8]))
                   for i in range(params.directory_slots)]
        seg_idxs = [i for i, e in enumerate(entries)
                    if e["occupied"] and e["addr"] == seg_addr]
        if not seg_idxs:
            raise HashTableError(
                f"segment {seg_addr:#x} unreachable from directory")
        old_pattern = seg_idxs[0] & (move_bit - 1)
        new_pattern = old_pattern | move_bit
        sibling = entries[new_pattern]
        stride = 1 << new_depth
        if sibling["occupied"] and sibling["addr"] != seg_addr \
                and sibling["local_depth"] == new_depth:
            # Roll forward.  Phase 4 writes new-pattern slots first, so a
            # published sibling here implies phase 3 completed; redo the
            # (idempotent) directory writes, clear migrated entries, and
            # unlock everything at new_depth.
            new_seg_addr = sibling["addr"]
            dir_writes = []
            for idx in range(new_pattern, params.directory_slots, stride):
                word = DIR_ENTRY.pack(addr=new_seg_addr,
                                      local_depth=new_depth, occupied=1)
                dir_writes.append(WriteOp(self.info.dir_addr + idx * 8,
                                          u64_to_bytes(word)))
                self._dir_cache[idx] = DirCacheEntry(new_seg_addr, new_depth)
            for idx in range(old_pattern, params.directory_slots, stride):
                word = DIR_ENTRY.pack(addr=seg_addr,
                                      local_depth=new_depth, occupied=1)
                dir_writes.append(WriteOp(self.info.dir_addr + idx * 8,
                                          u64_to_bytes(word)))
                self._dir_cache[idx] = DirCacheEntry(seg_addr, new_depth)
            yield Batch(dir_writes)
            finalize = []
            for group in groups:
                for i, entry in enumerate(group.entries):
                    if entry.occupied and entry.fp2 & move_bit:
                        finalize.append(WriteOp(group.slot_addr(i),
                                                bytes(8)))
            # Headers last, fence last of all: its word is what grants
            # the sanitizer lockset, so release it after every other
            # repair write has landed.
            for group in groups:
                if group.addr == fence.addr:
                    continue
                finalize.append(WriteOp(group.addr, u64_to_bytes(
                    GROUP_HEADER.pack(local_depth=new_depth, locked=0,
                                      version=group.version + 2))))
            finalize.append(WriteOp(fence.addr, u64_to_bytes(
                GROUP_HEADER.pack(local_depth=new_depth, locked=0,
                                  version=fence_version + 2))))
            yield Batch(finalize)
            self.splits += 1
            return "rolled_forward"
        # Roll back: unlock every locked header at its old depth with a
        # bumped version (never restore the pre-lock version - a reader
        # holding the old version must still see "something changed").
        unlock = []
        for group in locked:
            if group.addr == fence.addr:
                continue
            unlock.append(WriteOp(group.addr, u64_to_bytes(
                GROUP_HEADER.pack(local_depth=old_depth, locked=0,
                                  version=group.version + 1))))
        unlock.append(WriteOp(fence.addr, u64_to_bytes(
            GROUP_HEADER.pack(local_depth=old_depth, locked=0,
                              version=fence_version + 1))))
        yield Batch(unlock)
        return "rolled_back"
