"""One-sided extendible (RACE-style) hashing for disaggregated memory."""

from .client import DirCacheEntry, GroupView, RaceClient
from .layout import (
    MAX_DEPTH,
    TableInfo,
    TableParams,
    fp2_of,
    group_index,
    key_hash,
    segment_index,
)
from .table import HASH_TABLE_CATEGORY, allocate_segment, create_table, table_bytes

__all__ = [
    "DirCacheEntry",
    "GroupView",
    "RaceClient",
    "MAX_DEPTH",
    "TableInfo",
    "TableParams",
    "fp2_of",
    "group_index",
    "key_hash",
    "segment_index",
    "HASH_TABLE_CATEGORY",
    "allocate_segment",
    "create_table",
    "table_bytes",
]
