"""Wire layouts and hashing rules of the one-sided extendible hash table.

The table follows RACE hashing (Zuo et al., ATC'21) in the properties the
paper relies on: a client reads one bucket *group* in a single round trip,
inserts with an 8-byte CAS, and caches the directory locally.  Resizing is
extendible (segment splits + directory doubling).

One deliberate design point makes splits fully one-sided: the 12-bit
fingerprint stored in each entry (``fp2`` in the paper's Fig 3) is defined
as the **low 12 bits of the key hash** - the same bits extendible hashing
uses for segment indexing.  A splitting client can therefore redistribute
entries using only the entries themselves, with no key recovery reads.
This caps the directory depth at 12 (4096 segments per table), far above
what our workloads need.

Layout summary (little-endian 64-bit words):

* meta word: ``global_depth | lock``
* directory entry: ``segment addr (48) | local_depth (8) | occupied``
* group header: ``local_depth (8) | locked (1) | version (40)``
* entry: :class:`repro.art.layout.HashEntry` (addr 48, fp2 12, type 3,
  occupied 1)

A segment is ``groups_per_segment`` contiguous groups; a group is one
header word plus ``slots_per_group`` entry words.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import InvalidArgument
from ..util.bits import BitStruct
from ..util.hashing import hash64

MAX_DEPTH = 12  # fp2 carries the low 12 hash bits; splits may not exceed this

META = BitStruct("race_meta", [
    ("global_depth", 6),
    ("lock", 1),
])

DIR_ENTRY = BitStruct("race_dir_entry", [
    ("addr", 48),
    ("local_depth", 8),
    ("occupied", 1),
])

GROUP_HEADER = BitStruct("race_group_header", [
    ("local_depth", 8),
    ("locked", 1),
    ("version", 40),
])

HEADER_SIZE = 8
ENTRY_SIZE = 8


def key_hash(key: bytes, seed: int) -> int:
    """The 64-bit hash that drives segment, group and fp2 derivation."""
    return hash64(key, seed)


def fp2_of(h: int) -> int:
    """Entry fingerprint == low 12 bits of the key hash (see module doc)."""
    return h & 0xFFF


def segment_index(h: int, depth: int) -> int:
    """Directory index of ``h`` at (global or local) ``depth``."""
    return h & ((1 << depth) - 1)


def group_index(h: int, groups_per_segment: int) -> int:
    """Group within a segment; uses high hash bits, disjoint from the
    segment-index bits so splits do not reshuffle groups."""
    return (h >> 48) % groups_per_segment


@dataclass(frozen=True)
class TableParams:
    """Static geometry of one table, shared by MN builder and clients."""

    seed: int
    groups_per_segment: int = 64
    slots_per_group: int = 8
    initial_depth: int = 1
    max_depth: int = MAX_DEPTH

    def __post_init__(self):
        if not 0 <= self.initial_depth <= self.max_depth:
            raise InvalidArgument("initial_depth out of range")
        if self.max_depth > MAX_DEPTH:
            raise InvalidArgument(f"max_depth may not exceed {MAX_DEPTH}")
        if self.groups_per_segment < 1 or self.slots_per_group < 1:
            raise InvalidArgument("bad table geometry")

    @property
    def group_size(self) -> int:
        return HEADER_SIZE + self.slots_per_group * ENTRY_SIZE

    @property
    def segment_size(self) -> int:
        return self.groups_per_segment * self.group_size

    @property
    def directory_slots(self) -> int:
        return 1 << self.max_depth

    @property
    def directory_size(self) -> int:
        return self.directory_slots * 8

    def group_offset(self, group: int) -> int:
        return group * self.group_size


@dataclass(frozen=True)
class TableInfo:
    """Everything a client needs to reach one MN's table."""

    mn_id: int
    meta_addr: int
    dir_addr: int
    params: TableParams
