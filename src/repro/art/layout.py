"""Byte-accurate layouts of Sphinx's on-MN structures (the paper's Fig 3).

Everything a client reads or CASes is either a single 64-bit word or a
node-sized blob of such words:

* **Header** (8 B, one per ART node): ``status | type | depth |
  42-bit full-prefix hash | child count``.
* **Slot** (8 B, ``capacity`` per node): ``48-bit address | partial key
  byte | size class | leaf flag | occupied``.  Following SMART, the
  partial key lives *inside* the slot so a child installation is a single
  8-byte CAS.
* **Hash entry** (8 B, one per inner node, in the inner-node hash table):
  ``48-bit address | 12-bit fingerprint fp2 | node type | occupied``.
* **Leaf** (64 B aligned): 16-byte header (status, LeafLen in 64 B units,
  key/value lengths, CRC32 checksum) + key + value + padding.

Node sizes are ``8 + capacity*8``: 40 B (Node4), 136 B (Node16), 392 B
(Node48), 2056 B (Node256) - matching the paper's quoted 40-2056 B range.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from ..errors import ReproError
from ..util.bits import BitStruct, round_up, u64_from_bytes, u64_to_bytes
from ..util.checksum import leaf_checksum

# -- status values (2 bits) --------------------------------------------------
STATUS_IDLE = 0
STATUS_LOCKED = 1
STATUS_INVALID = 2

# -- node types ---------------------------------------------------------------
NODE4, NODE16, NODE48, NODE256 = 1, 2, 3, 4
NODE_CAPACITY: Dict[int, int] = {NODE4: 4, NODE16: 16, NODE48: 48, NODE256: 256}
NODE_TYPES: Tuple[int, ...] = (NODE4, NODE16, NODE48, NODE256)
HEADER_SIZE = 8
SLOT_SIZE = 8


def node_size(node_type: int) -> int:
    """Total byte size of a node of ``node_type`` (header + slots)."""
    return HEADER_SIZE + NODE_CAPACITY[node_type] * SLOT_SIZE


def next_node_type(node_type: int) -> int:
    """The type a full node grows into on a node type switch."""
    if node_type >= NODE256:
        raise ReproError("Node256 cannot grow")
    return node_type + 1


def smallest_type_for(count: int) -> int:
    """The smallest node type holding ``count`` children."""
    for node_type in NODE_TYPES:
        if count <= NODE_CAPACITY[node_type]:
            return node_type
    raise ReproError(f"no node type holds {count} children")


# -- 64-bit word layouts ------------------------------------------------------
HEADER = BitStruct("header", [
    ("status", 2),
    ("node_type", 3),
    ("depth", 8),
    ("prefix_hash", 42),
    ("count", 9),
])

SLOT = BitStruct("slot", [
    ("addr", 48),
    ("partial", 8),
    ("size_class", 6),   # child node type for inner children; LeafLen for leaves
    ("is_leaf", 1),
    ("occupied", 1),
])

HASH_ENTRY = BitStruct("hash_entry", [
    ("addr", 48),
    ("fp2", 12),
    ("node_type", 3),
    ("occupied", 1),
])

FP2_BITS = 12
EMPTY_WORD = 0

# Decoded-word memos.  Header/Slot/HashEntry are frozen dataclasses, so
# one instance per distinct word can be shared by every decode; traversals
# re-read the same hot nodes constantly and allocating a fresh object per
# unpack dominated decode time.  Bounded: cleared wholesale at _MEMO_MAX
# (purity makes refilling correct).
_MEMO_MAX = 1 << 20
_HEADER_MEMO: Dict[int, "Header"] = {}
_SLOT_MEMO: Dict[int, "Slot"] = {}
_HASH_ENTRY_MEMO: Dict[int, "HashEntry"] = {}


@dataclass(frozen=True)
class Header:
    """Decoded ART node header."""

    status: int
    node_type: int
    depth: int
    prefix_hash: int
    count: int

    def pack(self) -> int:
        # Hand-coded (hot path): equivalent to HEADER.pack(**fields),
        # with the same out-of-range rejection.
        status, node_type, depth = self.status, self.node_type, self.depth
        prefix_hash, count = self.prefix_hash, self.count
        if not (0 <= status < 4 and 0 <= node_type < 8 and
                0 <= depth < 256 and 0 <= prefix_hash < (1 << 42) and
                0 <= count < 512):
            return HEADER.pack(status=status, node_type=node_type,
                               depth=depth, prefix_hash=prefix_hash,
                               count=count)  # raises the precise error
        return (status | (node_type << 2) | (depth << 5)
                | (prefix_hash << 13) | (count << 55))

    @staticmethod
    def unpack(word: int) -> "Header":
        # Hand-coded (hot path): equivalent to HEADER.unpack().
        header = _HEADER_MEMO.get(word)
        if header is None:
            if len(_HEADER_MEMO) >= _MEMO_MAX:
                _HEADER_MEMO.clear()
            header = _HEADER_MEMO[word] = Header(
                word & 0x3, (word >> 2) & 0x7, (word >> 5) & 0xFF,
                (word >> 13) & 0x3FFFFFFFFFF, (word >> 55) & 0x1FF)
        return header


@dataclass(frozen=True)
class Slot:
    """Decoded child slot."""

    addr: int
    partial: int
    size_class: int
    is_leaf: bool
    occupied: bool

    def pack(self) -> int:
        # Hand-coded (hot path): equivalent to SLOT.pack(**fields).
        addr, partial, size_class = self.addr, self.partial, self.size_class
        if not (0 <= addr < (1 << 48) and 0 <= partial < 256 and
                0 <= size_class < 64):
            return SLOT.pack(addr=addr, partial=partial,
                             size_class=size_class,
                             is_leaf=int(self.is_leaf),
                             occupied=int(self.occupied))
        return (addr | (partial << 48) | (size_class << 56)
                | (bool(self.is_leaf) << 62) | (bool(self.occupied) << 63))

    @staticmethod
    def unpack(word: int) -> "Slot":
        # Hand-coded (hot path): equivalent to SLOT.unpack().
        slot = _SLOT_MEMO.get(word)
        if slot is None:
            if len(_SLOT_MEMO) >= _MEMO_MAX:
                _SLOT_MEMO.clear()
            slot = _SLOT_MEMO[word] = Slot(
                word & 0xFFFFFFFFFFFF, (word >> 48) & 0xFF,
                (word >> 56) & 0x3F, bool((word >> 62) & 1),
                bool((word >> 63) & 1))
        return slot

    def leaf_size(self) -> int:
        """Byte size of the leaf this slot points at (LeafLen * 64)."""
        if not self.is_leaf:
            raise ReproError("leaf_size on a non-leaf slot")
        return self.size_class * LEAF_ALIGN

    def child_node_size(self) -> int:
        """Byte size of the inner node this slot points at."""
        if self.is_leaf:
            raise ReproError("child_node_size on a leaf slot")
        return node_size(self.size_class)


@dataclass(frozen=True)
class HashEntry:
    """Decoded inner-node hash-table entry."""

    addr: int
    fp2: int
    node_type: int
    occupied: bool

    def pack(self) -> int:
        # Hand-coded (hot path): equivalent to HASH_ENTRY.pack(**fields).
        addr, fp2, node_type = self.addr, self.fp2, self.node_type
        if not (0 <= addr < (1 << 48) and 0 <= fp2 < (1 << 12) and
                0 <= node_type < 8):
            return HASH_ENTRY.pack(addr=addr, fp2=fp2, node_type=node_type,
                                   occupied=int(self.occupied))
        return (addr | (fp2 << 48) | (node_type << 60)
                | (bool(self.occupied) << 63))

    @staticmethod
    def unpack(word: int) -> "HashEntry":
        # Hand-coded (hot path): equivalent to HASH_ENTRY.unpack().
        entry = _HASH_ENTRY_MEMO.get(word)
        if entry is None:
            if len(_HASH_ENTRY_MEMO) >= _MEMO_MAX:
                _HASH_ENTRY_MEMO.clear()
            entry = _HASH_ENTRY_MEMO[word] = HashEntry(
                word & 0xFFFFFFFFFFFF, (word >> 48) & 0xFFF,
                (word >> 60) & 0x7, bool((word >> 63) & 1))
        return entry


# -- whole-node encode/decode -------------------------------------------------

def encode_node(header: Header, slots: List[Optional[Slot]]) -> bytes:
    """Serialize a node; ``slots`` must have exactly the type's capacity."""
    capacity = NODE_CAPACITY[header.node_type]
    if len(slots) != capacity:
        raise ReproError(
            f"node type {header.node_type} needs {capacity} slots, "
            f"got {len(slots)}"
        )
    words = [header.pack()]
    words.extend(slot.pack() if slot is not None else EMPTY_WORD
                 for slot in slots)
    return _NODE_STRUCTS[header.node_type].pack(*words)


_OCC = 1 << 63
_ADDR_MASK = (1 << 48) - 1


class NodeView:
    """A decoded node as read from remote memory.

    Slot words are kept raw and decoded lazily: a Node-256 read touches a
    single slot in the common case, so eagerly building 256 Slot objects
    per read dominated benchmark wall time.
    """

    __slots__ = ("header", "words")

    def __init__(self, header: Header, words):
        self.header = header
        self.words = words  # exactly capacity raw 64-bit slot words

    @property
    def slots(self) -> List[Slot]:
        """All slots decoded (tests/introspection; not the hot path)."""
        return [Slot.unpack(w) for w in self.words]

    def occupied_slots(self) -> List[Slot]:
        return [Slot.unpack(w) for w in self.words if w & _OCC]

    def occupied_count(self) -> int:
        return sum(1 for w in self.words if w & _OCC)

    def find_child(self, partial: int) -> Optional[Slot]:
        """Locate the child slot for key byte ``partial``.

        Node256 is direct-indexed by the byte; smaller nodes are scanned.
        """
        if self.header.node_type == NODE256:
            word = self.words[partial]
            return Slot.unpack(word) if word & _OCC else None
        for word in self.words:
            if word & _OCC and ((word >> 48) & 0xFF) == partial:
                return Slot.unpack(word)
        return None

    def first_free_index(self) -> Optional[int]:
        if self.header.node_type == NODE256:
            raise ReproError("Node256 children are direct-indexed")
        for i, word in enumerate(self.words):
            if not word & _OCC:
                return i
        return None

    def find_index_by_addr(self, addr: int) -> Optional[int]:
        """Index of the occupied slot pointing at ``addr``, if any."""
        for i, word in enumerate(self.words):
            if word & _OCC and (word & _ADDR_MASK) == addr:
                return i
        return None


_NODE_STRUCTS = {t: struct.Struct(f"<{NODE_CAPACITY[t] + 1}Q")
                 for t in NODE_TYPES}


def decode_node(data: bytes) -> NodeView:
    """Parse a node blob read from an MN."""
    header = Header.unpack(u64_from_bytes(data, 0))
    if header.node_type not in NODE_CAPACITY:
        raise ReproError(f"bad node type {header.node_type} in header")
    unpacker = _NODE_STRUCTS[header.node_type]
    if len(data) < unpacker.size:
        raise ReproError(f"short node read: {len(data)} < {unpacker.size}")
    words = unpacker.unpack_from(data, 0)
    return NodeView(header, words[1:])


# -- leaves ---------------------------------------------------------------

LEAF_ALIGN = 64
LEAF_HEADER_SIZE = 16
MAX_LEAF_UNITS = (1 << 6) - 1  # LeafLen lives in the slot's 6-bit size class
_LEAF_HEADER = struct.Struct("<BBHHHI I".replace(" ", ""))
# status(B) leaf_len(B) key_len(H) val_len(H) reserved(H) checksum(I) version(I)


def leaf_units_for(key_len: int, val_len: int) -> int:
    """Number of 64-byte units a leaf for (key_len, val_len) occupies."""
    size = round_up(LEAF_HEADER_SIZE + key_len + val_len, LEAF_ALIGN)
    units = size // LEAF_ALIGN
    if units > MAX_LEAF_UNITS:
        raise ReproError(f"leaf too large: {size} bytes")
    return units


def leaf_size_for(key_len: int, val_len: int) -> int:
    return leaf_units_for(key_len, val_len) * LEAF_ALIGN


def encode_leaf(key: bytes, value: bytes, status: int = STATUS_IDLE,
                units: Optional[int] = None, version: int = 0) -> bytes:
    """Serialize a leaf; ``units`` may over-provision for in-place growth."""
    needed = leaf_units_for(len(key), len(value))
    if units is None:
        units = needed
    elif units < needed:
        raise ReproError("requested leaf units too small for payload")
    payload = (len(key).to_bytes(2, "little")
               + len(value).to_bytes(2, "little") + key + value)
    checksum = leaf_checksum(payload)
    header = _LEAF_HEADER.pack(status, units, len(key), len(value), 0,
                               checksum, version)
    body = header + key + value
    return body + bytes(units * LEAF_ALIGN - len(body))


def leaf_status_word(status: int, units: int, key_len: int,
                     val_len: int) -> int:
    """The first 8 bytes of a leaf header as a CAS-able integer.

    The paper's leaf locking CASes the word holding the status field; the
    word also covers LeafLen and the lengths, all stable while locked.
    Computed arithmetically (little-endian ``<BBHHH_`` layout) - this
    sits on every leaf lock/unlock CAS.
    """
    return (status & 0xFF) | ((units & 0xFF) << 8) | \
        ((key_len & 0xFFFF) << 16) | ((val_len & 0xFFFF) << 32)


@dataclass
class LeafView:
    """A decoded leaf as read from remote memory."""

    status: int
    units: int
    key: bytes
    value: bytes
    checksum_ok: bool
    version: int

    @property
    def size(self) -> int:
        return self.units * LEAF_ALIGN


def decode_leaf(data: bytes) -> LeafView:
    """Parse a leaf blob; checksum mismatches are reported, not raised,
    because a failed check is a normal concurrency event (torn read)."""
    if len(data) < LEAF_HEADER_SIZE:
        raise ReproError("short leaf read")
    status, units, key_len, val_len, _res, checksum, version = \
        _LEAF_HEADER.unpack_from(data, 0)
    end = LEAF_HEADER_SIZE + key_len + val_len
    if end > len(data):
        return LeafView(status, units, b"", b"", False, version)
    key = data[LEAF_HEADER_SIZE:LEAF_HEADER_SIZE + key_len]
    value = data[LEAF_HEADER_SIZE + key_len:end]
    payload = (key_len.to_bytes(2, "little") + val_len.to_bytes(2, "little")
               + key + value)
    ok = leaf_checksum(payload) == checksum
    return LeafView(status, units, key, value, ok, version)
