"""Binary-comparable key codecs.

ART indexes byte strings in lexicographic order and requires the key set
to be **prefix-free** (no key may be a strict prefix of another), otherwise
a key would terminate in the middle of an inner node.  The two datasets of
the paper satisfy this differently:

* ``u64``: fixed-width 8-byte big-endian integers - equal lengths are
  never prefixes of each other, and big-endian preserves numeric order.
* ``email``: variable-length ASCII strings terminated with a 0x00 byte
  (emails never contain NUL), the same convention as the original ART
  paper.
"""

from __future__ import annotations

from ..errors import KeyCodecError

TERMINATOR = 0x00
MAX_KEY_LEN = 255  # depth fits the 8-bit header field


def encode_u64(value: int) -> bytes:
    """Encode an unsigned 64-bit integer as a binary-comparable key."""
    if not 0 <= value < (1 << 64):
        raise KeyCodecError(f"u64 key out of range: {value}")
    return value.to_bytes(8, "big")


def decode_u64(key: bytes) -> int:
    if len(key) != 8:
        raise KeyCodecError(f"u64 key must be 8 bytes, got {len(key)}")
    return int.from_bytes(key, "big")


def encode_str(text: str) -> bytes:
    """Encode a string key (e.g. an email address) with a NUL terminator."""
    raw = text.encode("utf-8")
    return encode_bytes_terminated(raw)


def encode_bytes_terminated(raw: bytes) -> bytes:
    """Terminate a raw byte key; rejects embedded NULs."""
    if TERMINATOR in raw:
        raise KeyCodecError("string keys must not contain NUL bytes")
    if len(raw) + 1 > MAX_KEY_LEN:
        raise KeyCodecError(f"key too long ({len(raw)} bytes, max "
                            f"{MAX_KEY_LEN - 1})")
    if not raw:
        raise KeyCodecError("empty keys are not supported")
    return raw + bytes([TERMINATOR])


def decode_str(key: bytes) -> str:
    if not key or key[-1] != TERMINATOR:
        raise KeyCodecError("not a terminated string key")
    return key[:-1].decode("utf-8")


def common_prefix_len(a: bytes, b: bytes) -> int:
    """Length of the longest common prefix of ``a`` and ``b``."""
    limit = min(len(a), len(b))
    for i in range(limit):
        if a[i] != b[i]:
            return i
    return limit


def check_prefix_free(keys) -> None:
    """Raise if any key in ``keys`` is a strict prefix of another.

    O(n log n); intended for dataset validation, not hot paths.
    """
    ordered = sorted(keys)
    for prev, cur in zip(ordered, ordered[1:]):
        if len(prev) < len(cur) and cur[:len(prev)] == prev:
            raise KeyCodecError(
                f"key {prev!r} is a prefix of {cur!r}; use a terminated codec"
            )
