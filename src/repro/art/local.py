"""A local in-memory Adaptive Radix Tree (reference implementation).

This is the algorithmic ground truth for the remote indexes: the same
path-compression rules (lazy leaf expansion, merged single-child chains)
expressed over plain Python objects.  It serves three roles:

* a model/oracle in property-based tests of the remote trees,
* the structural census (node counts by type/depth) that drives the
  space-consumption analysis of Fig 6,
* a fast correctness oracle for YCSB runs.

Like the remote trees (and the paper), deletion removes the leaf but does
not collapse inner nodes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Tuple, Union

from ..errors import KeyCodecError
from .keys import common_prefix_len
from .layout import NODE_CAPACITY, node_size, smallest_type_for


@dataclass
class _Leaf:
    key: bytes
    value: bytes


@dataclass
class _Inner:
    depth: int                  # == len(prefix)
    prefix: bytes               # full key prefix this node represents
    children: Dict[int, Union["_Inner", _Leaf]] = field(default_factory=dict)


@dataclass
class Census:
    """Structural summary of a tree (feeds the Fig 6 space model)."""

    leaves: int = 0
    inner_nodes: int = 0
    inner_by_type: Dict[int, int] = field(default_factory=dict)
    max_depth: int = 0
    inner_bytes: int = 0

    def record_inner(self, child_count: int, depth: int) -> None:
        node_type = smallest_type_for(max(child_count, 1))
        self.inner_nodes += 1
        self.inner_by_type[node_type] = self.inner_by_type.get(node_type, 0) + 1
        self.inner_bytes += node_size(node_type)
        self.max_depth = max(self.max_depth, depth)


class LocalART:
    """Dictionary-like ART over prefix-free byte keys."""

    def __init__(self):
        self._root = _Inner(depth=0, prefix=b"")
        self._count = 0
        self._deletes = 0

    def __len__(self) -> int:
        return self._count

    # -- search ---------------------------------------------------------
    def search(self, key: bytes) -> Optional[bytes]:
        """Return the value for ``key`` or None."""
        node = self._root
        while True:
            if len(key) <= node.depth:
                return None  # prefix-free keys never end inside an inner node
            child = node.children.get(key[node.depth])
            if child is None:
                return None
            if isinstance(child, _Leaf):
                return child.value if child.key == key else None
            if key[:child.depth] != child.prefix:
                return None  # diverges inside a compressed path
            node = child

    def __contains__(self, key: bytes) -> bool:
        return self.search(key) is not None

    # -- insert / update --------------------------------------------------
    def insert(self, key: bytes, value: bytes) -> bool:
        """Insert or overwrite; returns True if the key was new."""
        self._check_key(key)
        node = self._root
        while True:
            partial = key[node.depth]
            child = node.children.get(partial)
            if child is None:
                node.children[partial] = _Leaf(key, value)
                self._count += 1
                return True
            if isinstance(child, _Leaf):
                if child.key == key:
                    child.value = value
                    return False
                split_depth = common_prefix_len(key, child.key)
                new_inner = _Inner(split_depth, key[:split_depth])
                new_inner.children[child.key[split_depth]] = child
                new_inner.children[key[split_depth]] = _Leaf(key, value)
                node.children[partial] = new_inner
                self._count += 1
                return True
            if key[:child.depth] == child.prefix:
                node = child
                continue
            # Key diverges inside child's compressed path: split the edge.
            split_depth = common_prefix_len(key, child.prefix)
            new_inner = _Inner(split_depth, key[:split_depth])
            new_inner.children[child.prefix[split_depth]] = child
            new_inner.children[key[split_depth]] = _Leaf(key, value)
            node.children[partial] = new_inner
            self._count += 1
            return True

    # -- delete ----------------------------------------------------------
    def delete(self, key: bytes) -> bool:
        """Remove ``key``; returns True if it was present."""
        node = self._root
        while True:
            if len(key) <= node.depth:
                return False
            partial = key[node.depth]
            child = node.children.get(partial)
            if child is None:
                return False
            if isinstance(child, _Leaf):
                if child.key != key:
                    return False
                del node.children[partial]
                self._count -= 1
                self._deletes += 1
                return True
            if key[:child.depth] != child.prefix:
                return False
            node = child

    # -- ordered iteration / scans ----------------------------------------
    def items(self) -> Iterator[Tuple[bytes, bytes]]:
        """All (key, value) pairs in lexicographic key order."""
        yield from self._iter_node(self._root)

    def _iter_node(self, node: Union[_Inner, _Leaf]):
        if isinstance(node, _Leaf):
            yield node.key, node.value
            return
        for partial in sorted(node.children):
            yield from self._iter_node(node.children[partial])

    def scan(self, lo: bytes, hi: bytes) -> List[Tuple[bytes, bytes]]:
        """All pairs with lo <= key <= hi, in order."""
        out: List[Tuple[bytes, bytes]] = []
        self._scan_node(self._root, lo, hi, out, None)
        return out

    def scan_count(self, lo: bytes, count: int) -> List[Tuple[bytes, bytes]]:
        """The first ``count`` pairs with key >= lo (YCSB-E style scans)."""
        out: List[Tuple[bytes, bytes]] = []
        self._scan_node(self._root, lo, None, out, count)
        return out

    def _scan_node(self, node, lo: bytes, hi: Optional[bytes],
                   out: List[Tuple[bytes, bytes]],
                   limit: Optional[int]) -> bool:
        """DFS collecting in-range leaves; returns False to stop early."""
        if isinstance(node, _Leaf):
            if node.key < lo:
                return True
            if hi is not None and node.key > hi:
                return False
            out.append((node.key, node.value))
            return limit is None or len(out) < limit
        # Prune whole subtrees via the node prefix.
        if node.prefix:
            if node.prefix < lo[:node.depth]:
                return True   # entire subtree below the range; keep going
            if hi is not None and node.prefix > hi[:node.depth]:
                return False  # entire subtree above the range; stop
        for partial in sorted(node.children):
            if not self._scan_node(node.children[partial], lo, hi, out, limit):
                return False
        return True

    # -- structural census -------------------------------------------------
    def census(self) -> Census:
        census = Census()
        stack: List[_Inner] = [self._root]
        while stack:
            node = stack.pop()
            census.record_inner(len(node.children), node.depth)
            for child in node.children.values():
                if isinstance(child, _Leaf):
                    census.leaves += 1
                else:
                    stack.append(child)
        return census

    def inner_prefixes(self) -> Iterator[bytes]:
        """Full prefixes of all inner nodes (what the INHT/filter track)."""
        stack: List[_Inner] = [self._root]
        while stack:
            node = stack.pop()
            yield node.prefix
            for child in node.children.values():
                if isinstance(child, _Inner):
                    stack.append(child)

    # -- internals -----------------------------------------------------------
    @staticmethod
    def _check_key(key: bytes) -> None:
        if not key:
            raise KeyCodecError("empty keys are not supported")
        if len(key) > 255:
            raise KeyCodecError("keys longer than 255 bytes are unsupported")

    def check_invariants(self) -> None:
        """Validate structural invariants (used by property tests)."""
        self._check_node(self._root, b"")
        assert sum(1 for _ in self.items()) == self._count

    def _check_node(self, node: _Inner, expected_prefix: bytes) -> None:
        assert node.depth == len(node.prefix)
        assert node.prefix == expected_prefix
        if node is not self._root and self._deletes == 0:
            # Inserts never create single-child inner nodes (path
            # compression); deletes may leave them behind (no collapse).
            assert len(node.children) >= 2, "single-child inner node survived"
        for partial, child in node.children.items():
            if isinstance(child, _Leaf):
                assert child.key[:node.depth] == node.prefix
                assert child.key[node.depth] == partial
                assert NODE_CAPACITY  # silence linters; capacity is layout's
            else:
                assert child.depth > node.depth
                assert child.prefix[:node.depth] == node.prefix
                assert child.prefix[node.depth] == partial
                self._check_node(child, child.prefix)
