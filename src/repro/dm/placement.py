"""Placement of index data across memory nodes.

The paper distributes ART nodes (and their inner-node-hash-table entries)
evenly across MNs with consistent hashing (Fig 1).  Placement is keyed by
a node's **full prefix**, so the hash entry for a prefix and the node it
points at can live on different MNs - exactly as in the paper, where the
client first visits the MN owning the hash entry and then the MN owning
the node.
"""

from __future__ import annotations

from typing import Sequence

from ..util.hashing import ConsistentHashRing


class NodePlacement:
    """Consistent-hashing placement over a fixed set of memory nodes."""

    def __init__(self, mn_ids: Sequence[int], vnodes: int = 64, seed: int = 11):
        self._ring = ConsistentHashRing(mn_ids, vnodes=vnodes, seed=seed)
        self._mn_ids = list(mn_ids)

    @property
    def mn_ids(self) -> list:
        return list(self._mn_ids)

    def mn_for_prefix(self, prefix: bytes) -> int:
        """The MN that owns the ART node (and INHT entry) for ``prefix``."""
        return self._ring.lookup(prefix)

    def mn_for_leaf(self, key: bytes) -> int:
        """The MN that stores the leaf for ``key``.

        Leaves hash by full key so that hot inner prefixes do not
        concentrate leaf traffic on one MN.
        """
        return self._ring.lookup(b"leaf:" + key)
