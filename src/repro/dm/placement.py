"""Placement of index data across memory nodes.

The paper distributes ART nodes (and their inner-node-hash-table entries)
evenly across MNs with consistent hashing (Fig 1).  Placement is keyed by
a node's **full prefix**, so the hash entry for a prefix and the node it
points at can live on different MNs - exactly as in the paper, where the
client first visits the MN owning the hash entry and then the MN owning
the node.

Rack-scale clusters add a second tier above this: :class:`ShardMap`
splits the key space into a fixed number of hash shards and assigns each
shard to one **MN group** (a small set of MNs hosting one index cell)
through the same consistent-hashing machinery, so that adding or removing
a group moves only the shards that land on it - the minimal-movement
property online rebalancing relies on.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

from ..errors import ConfigError, InvalidArgument
from ..util.hashing import ConsistentHashRing, hash64


class NodePlacement:
    """Consistent-hashing placement over a fixed set of memory nodes."""

    def __init__(self, mn_ids: Sequence[int], vnodes: int = 64, seed: int = 11):
        self._ring = ConsistentHashRing(mn_ids, vnodes=vnodes, seed=seed)
        self._mn_ids = list(mn_ids)

    @property
    def mn_ids(self) -> list:
        return list(self._mn_ids)

    def mn_for_prefix(self, prefix: bytes) -> int:
        """The MN that owns the ART node (and INHT entry) for ``prefix``."""
        return self._ring.lookup(prefix)

    def mn_for_leaf(self, key: bytes) -> int:
        """The MN that stores the leaf for ``key``.

        Leaves hash by full key so that hot inner prefixes do not
        concentrate leaf traffic on one MN.
        """
        return self._ring.lookup(b"leaf:" + key)


class ShardMap:
    """Key-space sharding across MN groups.

    The key space is cut into ``num_shards`` hash shards; each shard is
    assigned to one group by a consistent-hash ring over the live group
    ids.  The materialized ``assignment`` list - not the ring - is the
    source of truth for routing: membership changes (:meth:`commit_join`
    / :meth:`commit_leave`) only update the ring, and the rebalancer
    flips ``assignment[shard]`` one shard at a time as each migration
    completes, so routing never jumps ahead of the data.
    """

    def __init__(self, num_shards: int, groups: Sequence[int], *,
                 seed: int = 23, vnodes: int = 32, replicas: int = 0):
        if num_shards < 1:
            raise InvalidArgument("need at least one shard")
        if not groups:
            raise InvalidArgument("need at least one group")
        if replicas < 0:
            raise InvalidArgument("replicas must be >= 0")
        self.num_shards = num_shards
        self._seed = seed
        self._vnodes = vnodes
        self._groups: List[int] = sorted(groups)
        ring = self._ring()
        self._cur_ring = ring
        self.assignment: List[int] = [ring.lookup(self._token(s))
                                      for s in range(num_shards)]
        #: Replication degree K: each shard keeps K replica groups beyond
        #: its primary, picked as the ring's successor chain.
        self.replicas = replicas
        #: Materialized replica sets per shard - like ``assignment``, the
        #: list (not the ring) is the routing truth: failover and the
        #: rebalancer's re-replication edit it one shard at a time.
        self.replica_assignment: List[List[int]] = [
            self.desired_replicas(s) for s in range(num_shards)]

    @staticmethod
    def _token(shard: int) -> bytes:
        return b"shard:%d" % shard

    def _ring(self, groups: Sequence[int] | None = None) -> ConsistentHashRing:
        return ConsistentHashRing(self._groups if groups is None
                                  else sorted(groups),
                                  vnodes=self._vnodes, seed=self._seed)

    @property
    def groups(self) -> List[int]:
        return list(self._groups)

    def shard_for_key(self, key: bytes) -> int:
        return hash64(key, self._seed ^ 0x5A4D) % self.num_shards

    def group_for_key(self, key: bytes) -> int:
        return self.assignment[self.shard_for_key(key)]

    def shards_of(self, group: int) -> List[int]:
        return [s for s, g in enumerate(self.assignment) if g == group]

    # -- replica placement -------------------------------------------------
    def desired_replicas(self, shard: int,
                         primary: int | None = None,
                         exclude: Sequence[int] = ()) -> List[int]:
        """The K replica groups the *current* ring picks for ``shard``:
        the first K distinct successors of the shard's token, skipping
        the primary and anything in ``exclude`` (draining/failed
        groups).  Successor chains inherit consistent hashing's
        minimal-movement property: a membership change only perturbs the
        chains that cross the changed token arcs.  Returns fewer than K
        when the ring has too few eligible groups.
        """
        if self.replicas == 0:
            return []
        primary = self.assignment[shard] if primary is None else primary
        banned = {primary} | set(exclude)
        chain = self._cur_ring.lookup_chain(self._token(shard),
                                            len(self._groups))
        return [g for g in chain if g not in banned][:self.replicas]

    def owner_chain(self, shard: int) -> List[int]:
        """Every current ring member in successor order from the shard's
        token - the candidate list failover re-homing walks."""
        return self._cur_ring.lookup_chain(self._token(shard),
                                           len(self._groups))

    def replicas_of(self, group: int) -> List[int]:
        """Shards currently keeping a replica on ``group``."""
        return [s for s, gs in enumerate(self.replica_assignment)
                if group in gs]

    # -- rebalancing plans -------------------------------------------------
    def plan_join(self, new_group: int) -> List[Tuple[int, int, int]]:
        """Moves ``[(shard, src, dst), ...]`` a joining group triggers.

        Consistent hashing guarantees only shards the *new* ring assigns
        to ``new_group`` move; every other shard keeps its owner.
        """
        if new_group in self._groups:
            raise ConfigError(f"group {new_group} already a member")
        ring = self._ring(self._groups + [new_group])
        return [(s, self.assignment[s], new_group)
                for s in range(self.num_shards)
                if ring.lookup(self._token(s)) == new_group
                and self.assignment[s] != new_group]

    def plan_leave(self, group: int) -> List[Tuple[int, int, int]]:
        """Moves that drain ``group`` before it leaves: its shards go to
        the owners the shrunk ring picks; nothing else moves."""
        if group not in self._groups:
            raise ConfigError(f"group {group} not a member")
        remaining = [g for g in self._groups if g != group]
        if not remaining:
            raise ConfigError("cannot drain the last group")
        ring = self._ring(remaining)
        return [(s, group, ring.lookup(self._token(s)))
                for s in range(self.num_shards)
                if self.assignment[s] == group]

    # -- membership commits ------------------------------------------------
    def commit_join(self, group: int) -> None:
        self._groups = sorted(self._groups + [group])
        self._cur_ring = self._ring()

    def commit_leave(self, group: int) -> None:
        self._groups = [g for g in self._groups if g != group]
        self._cur_ring = self._ring()
