"""Disaggregated-memory substrate: MN memory, NIC model, one-sided verbs."""

from .cluster import Cluster, ClusterConfig
from .memory import (
    NULL_ADDR,
    Memory,
    addr_mn,
    addr_offset,
    format_addr,
    make_addr,
)
from .network import NetworkConfig, Nic
from .placement import NodePlacement, ShardMap
from .rack import (
    ClusterSpec,
    GroupCluster,
    Migration,
    Rack,
    RackClient,
    TopologyEvent,
)
from .rdma import (
    Batch,
    CasOp,
    DirectExecutor,
    FaaOp,
    LocalCompute,
    OpStats,
    ReadOp,
    SimExecutor,
    WriteOp,
    apply_verb,
)

__all__ = [
    "Cluster",
    "ClusterConfig",
    "NULL_ADDR",
    "Memory",
    "addr_mn",
    "addr_offset",
    "format_addr",
    "make_addr",
    "NetworkConfig",
    "Nic",
    "NodePlacement",
    "ShardMap",
    "ClusterSpec",
    "GroupCluster",
    "Migration",
    "Rack",
    "RackClient",
    "TopologyEvent",
    "Batch",
    "CasOp",
    "DirectExecutor",
    "FaaOp",
    "LocalCompute",
    "OpStats",
    "ReadOp",
    "SimExecutor",
    "WriteOp",
    "apply_verb",
]
