"""Network and NIC model for the simulated DM cluster.

The paper's performance argument is about *messages and bytes through
NICs*: tree traversal costs one round trip per level; the inner-node hash
table costs Theta(L) parallel messages; the succinct filter cache brings
that down to one.  We therefore model each NIC as a FIFO station with a
per-message processing cost plus a serialization cost proportional to the
message size, and a fixed propagation delay between CNs and MNs.  Queueing
at these stations under increasing worker counts produces the saturation
behaviour of Fig 5.

Defaults approximate the paper's testbed (ConnectX-6, ~2 us RTT,
100 Gbps): one verb's unloaded round trip is

    cn_msg + prop + mn_msg + mem + mn_msg + prop + cn_msg  ~=  2.0 us
"""

from __future__ import annotations

import heapq
import os
from dataclasses import dataclass, field
from typing import List, Optional, Sequence

from ..sim import Engine, FifoServer

try:  # Optional acceleration; every helper below has a pure-Python twin.
    import numpy as _np
except ImportError:  # pragma: no cover - numpy is in the default image
    _np = None

#: Bursts at least this long take the numpy path in charge_burst /
#: charge_chain / msg_service_table; shorter ones stay scalar.  The
#: crossover is high because each numpy call pays asarray + ufunc setup
#: (~3-4 us) while the scalar recurrence costs ~60 ns per element;
#: doorbell-width runs (16) are firmly scalar territory.
_VECTOR_MIN = 48


def vector_enabled() -> bool:
    """True unless ``REPRO_SIM_VECTOR=0`` (or numpy is absent).

    Gates the closed-form/vectorized NIC pipeline used by the verb trips
    in :mod:`repro.dm.rdma`; the pure-Python event-per-stage path is
    always available and produces identical results.
    """
    return os.environ.get("REPRO_SIM_VECTOR", "") not in ("0",)


@dataclass(frozen=True)
class NetworkConfig:
    """Timing parameters of the simulated fabric (all times ns)."""

    prop_ns: int = 800
    """One-way propagation + switching delay between a CN and an MN."""

    cn_msg_ns: int = 25
    """Per-message processing cost at a compute-node NIC (40 Mmsg/s)."""

    mn_msg_ns: int = 25
    """Per-message processing cost at a memory-node NIC."""

    bytes_per_ns: float = 12.5
    """Serialization bandwidth, 12.5 B/ns = 100 Gbps."""

    mem_access_ns: int = 80
    """DRAM + PCIe DMA access latency on the memory side."""

    atomic_extra_ns: int = 30
    """Extra NIC-side cost of CAS/FAA over a plain READ/WRITE."""

    cn_nic_capacity: int = 1
    """Parallel message-processing units per CN NIC."""

    mn_nic_capacity: int = 1
    """Parallel message-processing units per MN NIC."""

    header_bytes: int = 32
    """Per-message wire overhead (RoCE/IB headers) added to payloads."""

    def msg_service_ns(self, side: str, payload_bytes: int) -> int:
        """Service time for one message carrying ``payload_bytes``."""
        per_msg = self.cn_msg_ns if side == "cn" else self.mn_msg_ns
        wire = payload_bytes + self.header_bytes
        return per_msg + int(wire / self.bytes_per_ns)

    def msg_service_table(self, side: str,
                          payload_sizes: Sequence[int]) -> List[int]:
        """Service times for a run of payload sizes.

        Vectorized with numpy for longer runs; the scalar fallback is the
        exact same arithmetic (float64 division truncated toward zero),
        so both produce identical integers.
        """
        per_msg = self.cn_msg_ns if side == "cn" else self.mn_msg_ns
        header = self.header_bytes
        bpn = self.bytes_per_ns
        if _np is not None and len(payload_sizes) >= _VECTOR_MIN:
            wire = _np.asarray(payload_sizes, dtype=_np.int64) + header
            return (per_msg
                    + (wire / bpn).astype(_np.int64)).tolist()
        return [per_msg + int((p + header) / bpn) for p in payload_sizes]

    def unloaded_rtt_ns(self, req_bytes: int = 0, resp_bytes: int = 8) -> int:
        """Latency of a single verb with no queueing (sanity/testing aid)."""
        return (self.msg_service_ns("cn", req_bytes)
                + self.prop_ns
                + self.msg_service_ns("mn", req_bytes)
                + self.mem_access_ns
                + self.msg_service_ns("mn", resp_bytes)
                + self.prop_ns
                + self.msg_service_ns("cn", resp_bytes))


@dataclass
class Nic:
    """One NIC: a FIFO message-processing station plus byte accounting."""

    engine: Engine
    name: str
    config: NetworkConfig
    side: str  # "cn" or "mn"
    capacity: int = 1
    server: FifoServer = field(init=False)
    messages: int = field(init=False, default=0)
    payload_bytes: int = field(init=False, default=0)

    def __post_init__(self):
        self.server = FifoServer(self.engine, self.name, self.capacity)
        # Service time is a pure function of the payload size and the
        # (frozen) config, and verbs reuse a handful of payload sizes, so
        # memoize rather than redo the bandwidth arithmetic per message.
        self._service_ns: dict = {}

    def process(self, payload_bytes: int, extra_ns: int = 0,
                arrive_delay: int = 0):
        """Submit one message; returns the completion event.

        ``arrive_delay`` is the wire time before the message reaches this
        NIC (propagation from the far side, DMA completion, ...).
        """
        self.messages += 1
        self.payload_bytes += payload_bytes
        service = self._service_ns.get(payload_bytes)
        if service is None:
            service = self._service_ns[payload_bytes] = \
                self.config.msg_service_ns(self.side, payload_bytes)
        return self.server.submit(service + extra_ns, arrive_delay)

    def service_ns(self, payload_bytes: int) -> int:
        """Memoized service time for one message of ``payload_bytes``."""
        service = self._service_ns.get(payload_bytes)
        if service is None:
            service = self._service_ns[payload_bytes] = \
                self.config.msg_service_ns(self.side, payload_bytes)
        return service

    def prime_service_cache(self, payload_sizes: Sequence[int]) -> None:
        """Precompute service times for known payload sizes in one
        (vectorizable) pass, so the hot path never misses the memo."""
        fresh = [p for p in payload_sizes if p not in self._service_ns]
        if fresh:
            table = self.config.msg_service_table(self.side, fresh)
            self._service_ns.update(zip(fresh, table))

    def charge(self, payload_bytes: int, extra_ns: int = 0,
               arrive_delay: int = 0, now: Optional[int] = None) -> int:
        """Account one message and advance the FIFO station, returning
        the **absolute** completion time without scheduling an event.

        Exactly :meth:`process` minus the event: same counters, same
        station math.  The verb trips in :mod:`repro.dm.rdma` use this to
        schedule one pooled timeout per stage (or none at all on the
        closed-form path) instead of going through ``FifoServer.submit``.

        ``now`` overrides the submission time (default: the engine
        clock); the closed-form trip uses it to account a future stage's
        submission before the clock gets there.
        """
        self.messages += 1
        self.payload_bytes += payload_bytes
        service = self.service_ns(payload_bytes) + extra_ns
        server = self.server
        if now is None:
            now = self.engine.now
        if server.capacity == 1:
            start = now + arrive_delay
            free = server._free1
            if free > start:
                start = free
            done = start + service
            server._free1 = done
            server.busy_time += service
            server.jobs += 1
            return done
        free_at = heapq.heappop(server._free_at)
        done = max(now + arrive_delay, free_at) + service
        heapq.heappush(server._free_at, done)
        server.busy_time += service
        server.jobs += 1
        return done

    def charge_chain(self, arrivals: Sequence[int],
                     payloads: Sequence[int],
                     extras: Optional[Sequence[int]] = None,
                     offset: int = 0) -> List[int]:
        """Account a chain of messages with known **absolute** arrival
        times (non-decreasing); returns each absolute completion time.

        This is the middle-stage closed form of a doorbell batch: member
        ``i`` reaches this NIC at ``arrivals[i] + offset`` and is served
        FIFO, so ``done[i] = max(done[i-1], arrival[i]) + service[i]``.
        ``offset`` shifts every arrival (wire propagation, DMA latency)
        so callers can chain stages without building intermediate lists.
        The recurrence vectorizes as ``done = S + cummax(arrivals - S')``
        with ``S`` the service prefix sum (``S'`` shifted by one) - numpy
        for long runs, the literal recurrence otherwise; identical
        integers either way.
        """
        n = len(arrivals)
        if n == 0:
            return []
        self.messages += n
        self.payload_bytes += sum(payloads)
        memo = self._service_ns
        lookup = memo.get
        msg_ns = self.config.msg_service_ns
        side = self.side
        services = []
        total = 0
        if extras is None:
            for p in payloads:
                s = lookup(p)
                if s is None:
                    s = memo[p] = msg_ns(side, p)
                total += s
                services.append(s)
        else:
            for p, e in zip(payloads, extras):
                s = lookup(p)
                if s is None:
                    s = memo[p] = msg_ns(side, p)
                s += e
                total += s
                services.append(s)
        server = self.server
        if server.capacity != 1:
            out = []
            for arr, svc in zip(arrivals, services):
                free_at = heapq.heappop(server._free_at)
                done = max(arr + offset, free_at) + svc
                heapq.heappush(server._free_at, done)
                out.append(done)
            server.busy_time += total
            server.jobs += n
            return out
        free = server._free1
        if _np is not None and n >= _VECTOR_MIN:
            svc = _np.asarray(services, dtype=_np.int64)
            cum = _np.cumsum(svc)
            pressure = _np.asarray(arrivals, dtype=_np.int64) + offset
            pressure = pressure - cum + svc  # arrivals[i] - S[i-1]
            if free > pressure[0]:
                pressure[0] = free
            out = (cum + _np.maximum.accumulate(pressure)).tolist()
        else:
            out = []
            prev = free
            for arr, svc in zip(arrivals, services):
                arr += offset
                if arr > prev:
                    prev = arr
                prev += svc
                out.append(prev)
        server._free1 = out[-1]
        server.busy_time += total
        server.jobs += n
        return out

    def charge_burst(self, payloads: Sequence[int], extra_ns: int = 0,
                     arrive_delay: int = 0) -> List[int]:
        """Account a back-to-back run of messages; returns each message's
        absolute completion time.

        The closed form of calling :meth:`charge` once per message at the
        same simulated time: on a capacity-1 station the completions are
        ``start + cumsum(service)``.  Long runs use numpy for the prefix
        sum; short runs (and numpy-less installs) use the scalar
        :meth:`FifoServer.submit_burst` - identical integers either way.
        """
        n = len(payloads)
        if n == 0:
            return []
        self.messages += n
        self.payload_bytes += sum(payloads)
        memo = self._service_ns
        lookup = memo.get
        services = []
        for p in payloads:
            s = lookup(p)
            if s is None:
                s = memo[p] = self.config.msg_service_ns(self.side, p)
            services.append(s + extra_ns if extra_ns else s)
        server = self.server
        if (_np is not None and n >= _VECTOR_MIN
                and server.capacity == 1):
            start = self.engine.now + arrive_delay
            free = server._free1
            if free > start:
                start = free
            done = start + _np.cumsum(
                _np.asarray(services, dtype=_np.int64))
            out = done.tolist()
            server._free1 = out[-1]
            server.busy_time += int(done[-1]) - start
            server.jobs += n
            return out
        return server.submit_burst(services, arrive_delay)

    def utilization(self) -> float:
        return self.server.utilization()

    def reset_stats(self) -> None:
        self.messages = 0
        self.payload_bytes = 0
        self.server.reset_stats()
