"""Network and NIC model for the simulated DM cluster.

The paper's performance argument is about *messages and bytes through
NICs*: tree traversal costs one round trip per level; the inner-node hash
table costs Theta(L) parallel messages; the succinct filter cache brings
that down to one.  We therefore model each NIC as a FIFO station with a
per-message processing cost plus a serialization cost proportional to the
message size, and a fixed propagation delay between CNs and MNs.  Queueing
at these stations under increasing worker counts produces the saturation
behaviour of Fig 5.

Defaults approximate the paper's testbed (ConnectX-6, ~2 us RTT,
100 Gbps): one verb's unloaded round trip is

    cn_msg + prop + mn_msg + mem + mn_msg + prop + cn_msg  ~=  2.0 us
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..sim import Engine, FifoServer


@dataclass(frozen=True)
class NetworkConfig:
    """Timing parameters of the simulated fabric (all times ns)."""

    prop_ns: int = 800
    """One-way propagation + switching delay between a CN and an MN."""

    cn_msg_ns: int = 25
    """Per-message processing cost at a compute-node NIC (40 Mmsg/s)."""

    mn_msg_ns: int = 25
    """Per-message processing cost at a memory-node NIC."""

    bytes_per_ns: float = 12.5
    """Serialization bandwidth, 12.5 B/ns = 100 Gbps."""

    mem_access_ns: int = 80
    """DRAM + PCIe DMA access latency on the memory side."""

    atomic_extra_ns: int = 30
    """Extra NIC-side cost of CAS/FAA over a plain READ/WRITE."""

    cn_nic_capacity: int = 1
    """Parallel message-processing units per CN NIC."""

    mn_nic_capacity: int = 1
    """Parallel message-processing units per MN NIC."""

    header_bytes: int = 32
    """Per-message wire overhead (RoCE/IB headers) added to payloads."""

    def msg_service_ns(self, side: str, payload_bytes: int) -> int:
        """Service time for one message carrying ``payload_bytes``."""
        per_msg = self.cn_msg_ns if side == "cn" else self.mn_msg_ns
        wire = payload_bytes + self.header_bytes
        return per_msg + int(wire / self.bytes_per_ns)

    def unloaded_rtt_ns(self, req_bytes: int = 0, resp_bytes: int = 8) -> int:
        """Latency of a single verb with no queueing (sanity/testing aid)."""
        return (self.msg_service_ns("cn", req_bytes)
                + self.prop_ns
                + self.msg_service_ns("mn", req_bytes)
                + self.mem_access_ns
                + self.msg_service_ns("mn", resp_bytes)
                + self.prop_ns
                + self.msg_service_ns("cn", resp_bytes))


@dataclass
class Nic:
    """One NIC: a FIFO message-processing station plus byte accounting."""

    engine: Engine
    name: str
    config: NetworkConfig
    side: str  # "cn" or "mn"
    capacity: int = 1
    server: FifoServer = field(init=False)
    messages: int = field(init=False, default=0)
    payload_bytes: int = field(init=False, default=0)

    def __post_init__(self):
        self.server = FifoServer(self.engine, self.name, self.capacity)
        # Service time is a pure function of the payload size and the
        # (frozen) config, and verbs reuse a handful of payload sizes, so
        # memoize rather than redo the bandwidth arithmetic per message.
        self._service_ns: dict = {}

    def process(self, payload_bytes: int, extra_ns: int = 0,
                arrive_delay: int = 0):
        """Submit one message; returns the completion event.

        ``arrive_delay`` is the wire time before the message reaches this
        NIC (propagation from the far side, DMA completion, ...).
        """
        self.messages += 1
        self.payload_bytes += payload_bytes
        service = self._service_ns.get(payload_bytes)
        if service is None:
            service = self._service_ns[payload_bytes] = \
                self.config.msg_service_ns(self.side, payload_bytes)
        return self.server.submit(service + extra_ns, arrive_delay)

    def utilization(self) -> float:
        return self.server.utilization()

    def reset_stats(self) -> None:
        self.messages = 0
        self.payload_bytes = 0
        self.server.reset_stats()
