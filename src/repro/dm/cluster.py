"""Cluster assembly: memory nodes, compute nodes, NICs, placement.

A :class:`Cluster` bundles the full simulated testbed - the paper's three
machines each hosting a CN and an MN - and hands out executors:

* ``direct_executor()`` for untimed bulk loading / inspection,
* ``sim_executor(cn_id)`` for timed benchmark clients.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict

from ..errors import ConfigError
from ..sim import Engine
from .memory import Memory, addr_mn, addr_offset, make_addr
from .network import NetworkConfig, Nic
from .placement import NodePlacement
from .rdma import DirectExecutor, OpStats, SimExecutor


@dataclass(frozen=True)
class ClusterConfig:
    """Shape and sizing of the simulated DM cluster."""

    num_mns: int = 3
    num_cns: int = 3
    mn_capacity_bytes: int = 1 << 30
    network: NetworkConfig = field(default_factory=NetworkConfig)
    ring_vnodes: int = 64
    placement_seed: int = 11

    def validate(self) -> None:
        if self.num_mns < 1:
            raise ConfigError("need at least one memory node")
        if self.num_cns < 1:
            raise ConfigError("need at least one compute node")
        if self.mn_capacity_bytes < (1 << 16):
            raise ConfigError("mn_capacity_bytes unreasonably small")


class Cluster:
    """The simulated disaggregated-memory testbed."""

    def __init__(self, config: ClusterConfig | None = None):
        self.config = config if config is not None else ClusterConfig()
        self.config.validate()
        self.engine = Engine()
        net = self.config.network
        self.memories: Dict[int, Memory] = {
            mn: Memory(mn, self.config.mn_capacity_bytes)
            for mn in range(self.config.num_mns)
        }
        self.mn_nics: Dict[int, Nic] = {
            mn: Nic(self.engine, f"mn{mn}.nic", net, "mn",
                    net.mn_nic_capacity)
            for mn in range(self.config.num_mns)
        }
        self.cn_nics: Dict[int, Nic] = {
            cn: Nic(self.engine, f"cn{cn}.nic", net, "cn",
                    net.cn_nic_capacity)
            for cn in range(self.config.num_cns)
        }
        self.placement = NodePlacement(
            list(self.memories), vnodes=self.config.ring_vnodes,
            seed=self.config.placement_seed)
        self.monitor = None        # optional DMSan AccessMonitor
        self.injector = None       # optional repro.fault FaultInjector
        self.tracer = None         # optional repro.obs Tracer
        self.recovery = None       # optional repro.recover RecoveryManager
        self._client_seq = 0
        self._seed_seq = 0

    # -- sanitizer ---------------------------------------------------------
    def attach_monitor(self, monitor) -> None:
        """Route every verb and allocator event through ``monitor``.

        Executors created *after* this call carry the monitor; attach it
        before building indexes so the monitor sees every allocation.
        """
        self.monitor = monitor
        monitor.bind_clock(lambda: self.engine.now)
        for memory in self.memories.values():
            memory.tracker = monitor

    def attach_sanitizer(self, config=None):
        """Create a DMSan :class:`repro.san.AccessMonitor`, attach it, and
        return it (convenience for tests and debugging sessions)."""
        from ..san import AccessMonitor  # local import: san depends on dm
        monitor = AccessMonitor(config)
        self.attach_monitor(monitor)
        return monitor

    # -- fault injection ---------------------------------------------------
    def attach_faults(self, plan):
        """Bind a :class:`repro.fault.FaultPlan` to this cluster and
        return the live :class:`repro.fault.FaultInjector`.

        Mirrors :meth:`attach_monitor`: executors created *after* this
        call consult the injector on every verb; executors created
        before it are untouched.  Attach after bulk loading so the
        loaded image is fault-free and snapshot-shareable.
        """
        from ..fault import FaultInjector  # local import: fault uses dm
        injector = FaultInjector(plan, self.memories)
        self.injector = injector
        return injector

    # -- observability -----------------------------------------------------
    def attach_tracer(self, tracer=None, config=None):
        """Bind a :class:`repro.obs.Tracer` (created from ``config`` when
        not given) to this cluster and return it.

        Mirrors :meth:`attach_monitor` / :meth:`attach_faults`: executors
        created *after* this call report op spans and verb events into
        the tracer; executors created before it are untouched.  The
        tracer samples resource gauges passively (never creating engine
        events), so an attached tracer leaves the simulated schedule
        bit-identical - see DESIGN.md §8.
        """
        if tracer is None:
            from ..obs import Tracer  # local import: obs depends on dm
            tracer = Tracer(config)
        self.tracer = tracer
        tracer.attach_resources(self)
        return tracer

    def detach_tracer(self):
        """Stop tracing: executors created from here on run the
        zero-overhead clean path.  Returns the detached tracer."""
        tracer, self.tracer = self.tracer, None
        return tracer

    # -- crash recovery ----------------------------------------------------
    def attach_recovery(self, config=None):
        """Create a :class:`repro.recover.RecoveryManager`, attach it, and
        return it.

        Mirrors :meth:`attach_monitor` / :meth:`attach_faults` /
        :meth:`attach_tracer`: executors created *after* this call report
        lease-tagged lock verbs into the manager's
        :class:`repro.recover.LeaseTable`; executors created before it -
        and every cluster with no manager attached - run the exact
        pre-recovery path, so schedules and OpStats stay bit-identical.
        """
        from ..recover import RecoveryManager  # local: recover uses dm
        manager = RecoveryManager(self, config)
        self.recovery = manager
        return manager

    def detach_recovery(self):
        """Stop lease tracking: executors created from here on run the
        clean path.  Returns the detached manager."""
        manager, self.recovery = self.recovery, None
        return manager

    def _next_client_id(self, prefix: str) -> str:
        self._client_seq += 1
        return f"{prefix}#{self._client_seq}"

    def next_seed(self, salt: int = 0) -> int:
        """A deterministic per-cluster RNG seed.

        Client-side jitter RNGs must be seeded from *cluster-scoped*
        state: a process-global counter would make a client's random
        stream depend on how many clusters the process built before this
        one, breaking run-order independence (and with it, bit-identical
        serial-vs-parallel benchmark grids)."""
        self._seed_seq += 1
        return salt ^ self._seed_seq

    # -- allocation ------------------------------------------------------
    def alloc(self, mn_id: int, size: int, category: str = "generic") -> int:
        """Allocate on a specific MN; returns a 48-bit global address."""
        offset = self.memories[mn_id].alloc(size, category)
        return make_addr(mn_id, offset)

    def alloc_for_prefix(self, prefix: bytes, size: int,
                         category: str = "generic") -> int:
        """Allocate on the MN that consistent hashing assigns to ``prefix``."""
        return self.alloc(self.placement.mn_for_prefix(prefix), size, category)

    def alloc_for_leaf(self, key: bytes, size: int,
                       category: str = "leaf") -> int:
        return self.alloc(self.placement.mn_for_leaf(key), size, category)

    def free(self, addr: int, size: int, category: str = "generic") -> None:
        """Release a block previously handed out by :meth:`alloc`."""
        self.memories[addr_mn(addr)].free(addr_offset(addr), size, category)

    def retire(self, addr: int, size: int, category: str = "generic") -> None:
        """Release a once-visible block without recycling it (see
        :meth:`repro.dm.memory.Memory.retire`)."""
        self.memories[addr_mn(addr)].retire(addr_offset(addr), size, category)

    # -- executors ---------------------------------------------------------
    def direct_executor(self, stats: OpStats | None = None) -> DirectExecutor:
        recovery = self.recovery
        return DirectExecutor(self.memories, stats,
                              monitor=self.monitor,
                              client_id=self._next_client_id("direct"),
                              clock=lambda: self.engine.now,
                              injector=self.injector,
                              tracer=self.tracer,
                              lease_hook=None if recovery is None
                              else recovery.lease_table.on_verb)

    def sim_executor(self, cn_id: int,
                     stats: OpStats | None = None) -> SimExecutor:
        if cn_id not in self.cn_nics:
            raise ConfigError(f"no such compute node {cn_id}")
        recovery = self.recovery
        return SimExecutor(self.engine, self.memories,
                           self.cn_nics[cn_id], self.mn_nics,
                           self.config.network, stats,
                           monitor=self.monitor,
                           client_id=self._next_client_id(f"cn{cn_id}"),
                           injector=self.injector,
                           tracer=self.tracer,
                           lease_hook=None if recovery is None
                           else recovery.lease_table.on_verb)

    # -- accounting --------------------------------------------------------
    def mn_bytes_by_category(self) -> Dict[str, int]:
        """Net allocated MN bytes summed per category across all MNs."""
        total: Dict[str, int] = {}
        for memory in self.memories.values():
            for category, size in memory.allocated_by_category.items():
                total[category] = total.get(category, 0) + size
        return total

    def total_mn_bytes(self) -> int:
        return sum(m.allocated_bytes() for m in self.memories.values())

    def reset_nic_stats(self) -> None:
        for nic in list(self.mn_nics.values()) + list(self.cn_nics.values()):
            nic.reset_stats()
