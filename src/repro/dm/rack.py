"""Rack-scale topology: MN groups, key-space shards, elastic membership.

The paper's testbed is three machines; :class:`Rack` scales the simulated
cluster an order of magnitude by composing one big :class:`Cluster` (all
the CNs, MNs and NICs share a single engine, so the whole rack is still
one deterministic simulation) out of **MN groups**: each group of
``group_size`` memory nodes hosts one index cell whose node placement is
confined to the group, and a :class:`~repro.dm.placement.ShardMap`
assigns every key-space shard to exactly one group.

Routing is a thin client tier: :class:`RackClient` mirrors the per-CN
index-client API (``search``/``insert``/``update``/``delete``/
``scan_count`` op generators), hashes the key to its shard, and delegates
to the owning group's real index client.  During an online migration the
router consults the shard's ``copied`` set, so a key is served by the
source cell until the very completion of its copy and by the destination
cell afterwards - reads never block on a rebalance.

Elasticity: :meth:`Rack.add_group` provisions ``group_size`` fresh MNs
(memory + NIC) on the live cluster and builds an empty index cell for
them; draining and shard migration are the
:class:`repro.recover.Rebalancer`'s job (it reuses the recovery/fsck
primitives).  ``scan_count`` on a rack is a *per-shard* scan: hash
sharding does not preserve global key order, the same honest limitation
real hash-sharded stores have.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Set

from ..errors import (
    ConfigError,
    InjectedFault,
    MNUnavailable,
    RetryLimitExceeded,
    StaleEpoch,
)
from ..obs.counters import Counters, client_counters
from .cluster import Cluster, ClusterConfig
from .network import NetworkConfig, Nic
from .memory import Memory
from .placement import NodePlacement, ShardMap


@dataclass(frozen=True)
class ClusterSpec:
    """Shape of a rack-scale, group-sharded cluster.

    ``num_mns`` MNs are partitioned into groups of ``group_size``;
    ``num_shards`` key-space shards spread over the groups via consistent
    hashing.  ``clients`` is the default number of closed-loop client
    generators the rack runner spreads over the CNs.
    """

    num_cns: int = 32
    num_mns: int = 32
    group_size: int = 4
    num_shards: int = 128
    clients: int = 2000
    mn_capacity_bytes: int = 1 << 30
    network: NetworkConfig = field(default_factory=NetworkConfig)
    ring_vnodes: int = 64
    placement_seed: int = 11
    shard_seed: int = 23
    shard_vnodes: int = 32
    #: Replication degree K: each shard keeps K replica groups beyond
    #: its primary (0 = the original unreplicated rack, byte-identical
    #: schedules to the pre-replication code).
    replicas: int = 0

    def validate(self) -> None:
        if self.num_cns < 1:
            raise ConfigError("need at least one compute node")
        if self.group_size < 1:
            raise ConfigError("group_size must be >= 1")
        if self.num_mns < self.group_size \
                or self.num_mns % self.group_size != 0:
            raise ConfigError("num_mns must be a positive multiple of "
                              "group_size")
        if self.num_shards < self.num_mns // self.group_size:
            raise ConfigError("need at least one shard per group")
        if self.clients < 1:
            raise ConfigError("need at least one client generator")
        if self.replicas < 0:
            raise ConfigError("replicas must be >= 0")
        if self.replicas >= self.num_groups:
            raise ConfigError("replicas must leave at least one group "
                              "as primary (replicas < num_groups)")

    @property
    def num_groups(self) -> int:
        return self.num_mns // self.group_size


@dataclass(frozen=True)
class TopologyEvent:
    """A scheduled elastic-membership event the rack runner executes.

    ``mn_join`` provisions one fresh MN group and rebalances shards onto
    it; ``mn_leave`` drains ``group`` (default: the lowest live group)
    and retires it.  Both run *online*, interleaved with traffic.
    """

    at_ns: int
    kind: str  # "mn_join" | "mn_leave"
    group: Optional[int] = None

    def validate(self) -> None:
        if self.kind not in ("mn_join", "mn_leave"):
            raise ConfigError(f"unknown topology event kind {self.kind!r}")
        if self.at_ns < 0:
            raise ConfigError("TopologyEvent.at_ns must be >= 0")


class GroupCluster:
    """A group-scoped view of the rack's cluster.

    Same engine, NICs, executors and attachment points (sanitizer, fault
    injector, tracer, recovery) as the underlying :class:`Cluster` - but
    ``memories`` and node placement restricted to the group's MNs, so an
    index built against the view allocates, hashes and creates its INHT
    tables only inside the group.  Everything else delegates.
    """

    def __init__(self, cluster: Cluster, mn_ids: Sequence[int], *,
                 vnodes: int = 64, seed: int = 11):
        self._cluster = cluster
        self.mn_ids = list(mn_ids)
        self.memories = {mn: cluster.memories[mn] for mn in mn_ids}
        self.placement = NodePlacement(self.mn_ids, vnodes=vnodes, seed=seed)

    def __getattr__(self, name):
        # Everything not group-scoped (engine, executors, alloc/free,
        # injector, tracer, recovery, config, NIC dicts...) is the rack's.
        return getattr(self._cluster, name)

    def alloc_for_prefix(self, prefix: bytes, size: int,
                         category: str = "generic") -> int:
        return self._cluster.alloc(self.placement.mn_for_prefix(prefix),
                                   size, category)

    def alloc_for_leaf(self, key: bytes, size: int,
                       category: str = "leaf") -> int:
        return self._cluster.alloc(self.placement.mn_for_leaf(key),
                                   size, category)


@dataclass
class Migration:
    """Live state of one in-flight shard migration (router-visible)."""

    shard: int
    src: int
    dst: int
    copied: Set[bytes] = field(default_factory=set)


def _default_index_factory(view: GroupCluster):
    """One Sphinx cell per group (the rack family's default system)."""
    from ..core import SphinxConfig, SphinxIndex  # local: core uses dm
    return SphinxIndex(view, SphinxConfig(filter_budget_bytes=1 << 16))


class Rack:
    """The rack-scale testbed: one cluster, many group-sharded cells.

    ``index_factory(view)`` builds one index per group against its
    :class:`GroupCluster` view; the default is a Sphinx cell.  The rack
    itself quacks like an index for the YCSB runner: ``client(cn)``
    returns a routing :class:`RackClient`.
    """

    def __init__(self, spec: ClusterSpec | None = None,
                 index_factory: Optional[Callable] = None):
        self.spec = spec if spec is not None else ClusterSpec()
        self.spec.validate()
        self.cluster = Cluster(ClusterConfig(
            num_mns=self.spec.num_mns, num_cns=self.spec.num_cns,
            mn_capacity_bytes=self.spec.mn_capacity_bytes,
            network=self.spec.network, ring_vnodes=self.spec.ring_vnodes,
            placement_seed=self.spec.placement_seed))
        self._index_factory = index_factory if index_factory is not None \
            else _default_index_factory
        self._groups: Dict[int, GroupCluster] = {}
        self._indexes: Dict[int, object] = {}
        self._next_mn = self.spec.num_mns
        self._next_group = self.spec.num_groups
        for gid in range(self.spec.num_groups):
            base = gid * self.spec.group_size
            self._provision(gid, list(range(base, base + self.spec.group_size)))
        self.shards = ShardMap(self.spec.num_shards,
                               list(range(self.spec.num_groups)),
                               seed=self.spec.shard_seed,
                               vnodes=self.spec.shard_vnodes,
                               replicas=self.spec.replicas)
        #: Committed keys per shard - the migration source of truth.
        self.registry: List[Set[bytes]] = [set() for _ in
                                           range(self.spec.num_shards)]
        self.migrations: Dict[int, Migration] = {}
        self.retired_groups: Set[int] = set()
        #: Groups lost to ``crash_mn`` (a subset of ``retired_groups``
        #: once the failover manager has processed them).
        self.failed_groups: Set[int] = set()
        #: Per-shard failover epochs.  A replicated write captures its
        #: shard's epoch at route time and re-checks it before every
        #: apply; a failover promotion bumps the epoch, fencing off
        #: writes routed against the deposed primary (DESIGN.md §14).
        self.epochs: List[int] = [0] * self.spec.num_shards
        #: Per-shard ``{replica_gid: missed_writes}`` - how many
        #: replicated applies each replica failed to absorb since its
        #: last successful anti-entropy sweep.  "Freshest replica" at
        #: promotion time = minimal lag (ties broken by lowest gid).
        self.replica_lag: List[Dict[int, int]] = [
            {} for _ in range(self.spec.num_shards)]
        #: Replication-tier counters (fallback reads, fenced writes,
        #: failovers, anti-entropy repairs...), the Counters facade the
        #: rack runner folds into its digest.
        self.repl = Counters()
        self._clients: Dict[int, RackClient] = {}

    # -- topology ----------------------------------------------------------
    def _provision(self, gid: int, mn_ids: List[int]) -> None:
        view = GroupCluster(self.cluster, mn_ids,
                            vnodes=self.spec.ring_vnodes,
                            seed=self.spec.placement_seed ^ (gid * 0x9E37))
        self._groups[gid] = view
        self._indexes[gid] = self._index_factory(view)

    def add_group(self) -> int:
        """Provision one fresh MN group (the ``mn_join`` event body).

        New memories and NICs join the live cluster dicts, so executors,
        the fault injector and NIC accounting - all of which hold those
        dict references - see the new nodes without re-attachment.
        """
        net = self.cluster.config.network
        mn_ids = []
        for _ in range(self.spec.group_size):
            mn = self._next_mn
            self._next_mn += 1
            self.cluster.memories[mn] = Memory(
                mn, self.spec.mn_capacity_bytes)
            if self.cluster.monitor is not None:
                self.cluster.memories[mn].tracker = self.cluster.monitor
            self.cluster.mn_nics[mn] = Nic(
                self.cluster.engine, f"mn{mn}.nic", net, "mn",
                net.mn_nic_capacity)
            mn_ids.append(mn)
        gid = self._next_group
        self._next_group += 1
        self._provision(gid, mn_ids)
        return gid

    def live_groups(self) -> List[int]:
        return [g for g in sorted(self._indexes)
                if g not in self.retired_groups]

    def group_view(self, gid: int) -> GroupCluster:
        return self._groups[gid]

    def group_index(self, gid: int):
        return self._indexes[gid]

    # -- routing -----------------------------------------------------------
    def shard_of(self, key: bytes) -> int:
        return self.shards.shard_for_key(key)

    def group_of(self, key: bytes) -> int:
        """Migration-aware owner group of ``key`` right now."""
        shard = self.shards.shard_for_key(key)
        migration = self.migrations.get(shard)
        if migration is None:
            return self.shards.assignment[shard]
        return migration.dst if key in migration.copied else migration.src

    def client(self, cn_id: int) -> "RackClient":
        if cn_id not in self._clients:
            self._clients[cn_id] = RackClient(self, cn_id)
        return self._clients[cn_id]

    # -- epoch fencing (DESIGN.md §14) --------------------------------------
    def check_epoch(self, shard: int, epoch: int) -> None:
        """Fence: raise :class:`~repro.errors.StaleEpoch` when a write's
        captured epoch no longer matches the shard's (a failover
        promotion happened while the op was in flight)."""
        current = self.epochs[shard]
        if epoch != current:
            self.repl.inc("fenced_writes")
            raise StaleEpoch(
                f"shard {shard}: write captured epoch {epoch}, "
                f"fenced at epoch {current}",
                shard=shard, expected=epoch, current=current)

    def live_replicas(self, shard: int) -> List[int]:
        return [g for g in self.shards.replica_assignment[shard]
                if g not in self.failed_groups]

    # -- accounting / checking ---------------------------------------------
    def total_keys(self) -> int:
        return sum(len(keys) for keys in self.registry)

    def keys_by_group(self) -> Dict[int, int]:
        out: Dict[int, int] = {g: 0 for g in sorted(self._indexes)}
        for shard, keys in enumerate(self.registry):
            out[self.shards.assignment[shard]] += len(keys)
        return out

    def fsck_all(self, repair: bool = False) -> List[tuple]:
        """Run the offline consistency check on every group cell.

        Returns ``[(gid, FsckReport), ...]``; pure memory walks, so the
        check never creates engine events or perturbs a paused run.
        With replication enabled a final rack-level report (gid ``-1``)
        verifies replica agreement: every registered key present at its
        primary cell, present with the identical value at every live
        replica cell, and present *nowhere else*.  Groups a failover
        retired (``failed_groups``) are skipped: their cells are
        half-blanked corpses already out of service, and their shards'
        health is judged by the replica-agreement stage instead.
        """
        from ..tools.fsck import check_index  # local: tools imports dm
        reports = [(gid, check_index(self._groups[gid], self._indexes[gid],
                                     repair=repair))
                   for gid in sorted(self._indexes)
                   if gid not in self.failed_groups]
        if self.spec.replicas:
            reports.append((-1, self.check_replica_agreement()))
        return reports

    def check_replica_agreement(self):
        """Offline replica-agreement check (the rack-level fsck stage).

        Enumerates every live cell's leaves straight from MN memory (no
        clock, no verbs, no injector RNG) and cross-checks them against
        the shard registry and the replica map:

        * ``replica_missing``  - a registered key absent from its
          primary cell or from a live replica cell;
        * ``replica_divergence`` - a replica holds the key with a value
          different from the primary's (anti-entropy's repair target,
          so the finding is marked repairable);
        * ``replica_leak``     - a live cell holds a key of a shard it
          neither owns nor replicates.
        """
        from ..tools.fsck import FsckReport, collect_leaves
        report = FsckReport()
        live = [g for g in self.live_groups() if g not in self.failed_groups]
        cells = {gid: collect_leaves(self._groups[gid],
                                     self._indexes[gid].root_addr)
                 for gid in live}
        for shard, keys in enumerate(self.registry):
            primary = self.shards.assignment[shard]
            replicas = [g for g in self.shards.replica_assignment[shard]
                        if g in cells]
            pcell = cells.get(primary)
            for key in sorted(keys):
                pval = pcell.get(key) if pcell is not None else None
                if pcell is not None and pval is None:
                    report.error(f"shard {shard}: registered key {key!r} "
                                 f"absent from primary group {primary}")
                    report.find("replica_missing", 0,
                                f"key {key!r} absent from primary "
                                f"group {primary}", repairable=False)
                for gid in replicas:
                    rval = cells[gid].get(key)
                    if rval is None:
                        report.error(f"shard {shard}: key {key!r} absent "
                                     f"from replica group {gid}")
                        report.find("replica_missing", 0,
                                    f"key {key!r} absent from replica "
                                    f"group {gid}", repairable=False)
                    elif pval is not None and rval != pval:
                        report.find("replica_divergence", 0,
                                    f"shard {shard} key {key!r}: replica "
                                    f"group {gid} diverges from primary "
                                    f"{primary}", repairable=True)
        for gid in live:
            for key in sorted(cells[gid]):
                shard = self.shards.shard_for_key(key)
                if gid != self.shards.assignment[shard] \
                        and gid not in self.shards.replica_assignment[shard]:
                    report.error(f"group {gid}: holds key {key!r} of "
                                 f"shard {shard} it neither owns nor "
                                 "replicates")
                    report.find("replica_leak", 0,
                                f"group {gid} leaks key {key!r} "
                                f"(shard {shard})", repairable=False)
        return report


class RackClient:
    """One CN's routing client over the rack's group cells.

    Mirrors the index-client op-generator API so the YCSB runner (and
    ``bulk_load``/``warm_clients``) drive a rack exactly like a single
    index.  Route choice happens at generator-construction time, which
    the runner immediately follows with execution - there is no simulated
    time between the two.
    """

    def __init__(self, rack: Rack, cn_id: int):
        self.rack = rack
        self.cn_id = cn_id
        self._made: Dict[int, object] = {}

    def _client(self, gid: int):
        client = self._made.get(gid)
        if client is None:
            client = self.rack.group_index(gid).client(self.cn_id)
            self._made[gid] = client
        return client

    def _route(self, key: bytes):
        return self._client(self.rack.group_of(key))

    # -- replication plumbing (no-ops at K=0) ------------------------------
    def _replicate(self, shard: int, epoch: int, op: str, key: bytes,
                   value: Optional[bytes] = None):
        """Apply one committed write to the shard's live replicas.

        Each apply is fenced on the captured epoch, so a straggler write
        routed before a failover never lands on a stale replica chain.
        A replica that faults mid-apply is skipped and its per-shard lag
        recorded - the anti-entropy sweep repairs it later - because the
        primary apply already committed the op.
        """
        rack = self.rack
        for gid in rack.shards.replica_assignment[shard]:
            if gid in rack.failed_groups:
                continue
            rack.check_epoch(shard, epoch)
            client = self._client(gid)
            try:
                if op == "delete":
                    yield from client.delete(key)
                else:
                    # Upsert: a lagging replica may not hold the key yet.
                    yield from client.insert(key, value)
            except (RetryLimitExceeded, InjectedFault, MNUnavailable):
                lag = rack.replica_lag[shard]
                lag[gid] = lag.get(gid, 0) + 1
                rack.repl.inc("replica_write_failures")
            else:
                rack.repl.inc("replica_writes")

    def _replica_read(self, shard: int, key: bytes):
        """Read fallback: serve ``key`` from the freshest live replica
        chain after the primary failed with ``MNUnavailable``."""
        rack = self.rack
        for gid in rack.live_replicas(shard):
            try:
                result = yield from self._client(gid).search(key)
            except MNUnavailable:
                continue
            rack.repl.inc("replica_fallback_reads")
            return result
        raise MNUnavailable(
            f"shard {shard}: primary and every replica unavailable")

    # -- op generators -----------------------------------------------------
    def search(self, key: bytes):
        if not self.rack.spec.replicas:
            result = yield from self._route(key).search(key)
            return result
        try:
            result = yield from self._route(key).search(key)
        except MNUnavailable:
            result = yield from self._replica_read(
                self.rack.shard_of(key), key)
        return result

    def update(self, key: bytes, value: bytes):
        rack = self.rack
        if not rack.spec.replicas:
            result = yield from self._route(key).update(key, value)
            return result
        shard = rack.shard_of(key)
        epoch = rack.epochs[shard]
        result = yield from self._route(key).update(key, value)
        yield from self._replicate(shard, epoch, "update", key, value)
        return result

    def insert(self, key: bytes, value: bytes):
        rack = self.rack
        shard = rack.shard_of(key)
        replicated = rack.spec.replicas > 0
        epoch = rack.epochs[shard] if replicated else 0
        fresh = key not in rack.registry[shard]
        migration = rack.migrations.get(shard)
        if migration is not None and fresh:
            # A brand-new key lands in a migrating shard: write it to the
            # destination outright and mark it copied, so the source cell
            # never grows behind the copier's back.
            result = yield from self._client(migration.dst).insert(key, value)
            migration.copied.add(key)
        else:
            result = yield from self._route(key).insert(key, value)
        rack.registry[shard].add(key)
        if replicated:
            try:
                yield from self._replicate(shard, epoch, "insert", key,
                                           value)
            except StaleEpoch:
                # The op fails (stale route) and must not claim a commit:
                # a key this op introduced is unregistered again - its
                # only apply landed on the deposed (dead) primary.
                if fresh:
                    rack.registry[shard].discard(key)
                raise
        return result

    def delete(self, key: bytes):
        rack = self.rack
        shard = rack.shard_of(key)
        replicated = rack.spec.replicas > 0
        epoch = rack.epochs[shard] if replicated else 0
        removed = yield from self._route(key).delete(key)
        rack.registry[shard].discard(key)
        migration = rack.migrations.get(shard)
        if migration is not None:
            migration.copied.discard(key)
        if replicated:
            yield from self._replicate(shard, epoch, "delete", key)
        return removed

    def scan_count(self, key: bytes, length: int):
        # Per-shard scan: hash sharding does not keep global key order.
        result = yield from self._route(key).scan_count(key, length)
        return result

    # -- introspection -----------------------------------------------------
    def counters(self) -> Counters:
        """Merged counters of every group client this CN materialized."""
        return Counters.aggregate(
            client_counters(self._made[gid]) for gid in sorted(self._made))

    def cn_cache_bytes(self) -> int:
        return sum(self._made[gid].cn_cache_bytes()
                   for gid in sorted(self._made)
                   if hasattr(self._made[gid], "cn_cache_bytes"))
