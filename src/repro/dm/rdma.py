"""One-sided RDMA verbs and the executors that run them.

Index algorithms in this library are written **once** as plain generators
that yield verb descriptors (:class:`ReadOp`, :class:`WriteOp`,
:class:`CasOp`, :class:`FaaOp`, a doorbell :class:`Batch`, or
:class:`LocalCompute`) and receive the verb's result back.  Two executors
drive such generators:

* :class:`DirectExecutor` applies every verb immediately with no notion of
  time - used for bulk loading, unit tests, and memory measurements.
* :class:`SimExecutor` turns each verb into a timed trip through the
  CN NIC -> fabric -> MN NIC -> DRAM -> back, inside the discrete-event
  engine - used for all benchmarks.  Memory side effects are applied at
  the simulated instant the MN NIC processes the request, so concurrent
  clients interleave with exactly the atomicity of real one-sided RDMA.

A :class:`Batch` models doorbell batching (Kalia et al., ATC'16): all verbs
are posted together, traverse the network in parallel, and the client
resumes when the last completion arrives - one round trip of latency, but
``len(ops)`` messages of NIC load.
"""

from __future__ import annotations

import sys
from dataclasses import dataclass, replace
from typing import Any, Callable, Generator, Mapping, Optional, Sequence, \
    Tuple, Union

from ..errors import ClientCrash, InjectedFault, MNUnavailable, \
    RetryLimitExceeded, SimulationError
from ..sim.engine import _DEFER, _POOL_CAP, PENDING, \
    Event as SimEvent, Timeout as SimTimeout
from .memory import Memory, OFFSET_BITS, OFFSET_MASK, addr_mn, addr_offset
from .network import Nic, vector_enabled


# --------------------------------------------------------------------------
# Verb descriptors
# --------------------------------------------------------------------------
#
# ``lease`` on WriteOp/CasOp is recovery metadata, not protocol state: a
# lock-acquiring CAS tags itself ``("node",) / ("leaf",) / ("hash", ...)``
# and the verb that releases the lock tags ``("release",)``.  The fabric
# ignores it entirely; only a :class:`repro.recover.LeaseTable` bound via
# ``Cluster.attach_recovery`` reads it (the node header has no spare bits
# for an owner/epoch, so the lease lives CN-side).  The ``None`` default
# keeps untagged verbs - and every pre-recovery schedule - byte-identical.

@dataclass(frozen=True)
class ReadOp:
    """RDMA READ of ``size`` bytes at global address ``addr`` -> bytes."""
    addr: int
    size: int


@dataclass(frozen=True)
class WriteOp:
    """RDMA WRITE of ``data`` at global address ``addr`` -> None."""
    addr: int
    data: bytes
    lease: Optional[tuple] = None


@dataclass(frozen=True)
class CasOp:
    """RDMA CAS on the 8-byte word at ``addr`` -> (swapped, old_value)."""
    addr: int
    expected: int
    desired: int
    lease: Optional[tuple] = None


@dataclass(frozen=True)
class FaaOp:
    """RDMA FAA on the 8-byte word at ``addr`` -> old_value."""
    addr: int
    delta: int


@dataclass(frozen=True)
class LocalCompute:
    """CN-side CPU work of ``ns`` nanoseconds (hashing, filter probes)."""
    ns: int


Verb = Union[ReadOp, WriteOp, CasOp, FaaOp]


@dataclass(frozen=True)
class Batch:
    """A doorbell batch: verbs posted together, completing together."""
    ops: Tuple[Verb, ...]

    def __init__(self, ops: Sequence[Verb]):
        object.__setattr__(self, "ops", tuple(ops))
        if not self.ops:
            # An empty doorbell would silently charge a full round trip
            # for zero messages - always a caller bug.
            raise SimulationError("empty batch: doorbell needs >= 1 verb")
        for op in self.ops:
            if isinstance(op, (Batch, LocalCompute)):
                raise SimulationError("batches must contain plain verbs")


OpOrBatch = Union[Verb, Batch, LocalCompute]
OpGenerator = Generator[OpOrBatch, Any, Any]


# --------------------------------------------------------------------------
# Statistics
# --------------------------------------------------------------------------

@dataclass
class OpStats:
    """Verb-level counters for one executor (one client)."""

    reads: int = 0
    writes: int = 0
    cas: int = 0
    faa: int = 0
    round_trips: int = 0
    messages: int = 0
    bytes_read: int = 0
    bytes_written: int = 0
    batches: int = 0
    local_compute_ns: int = 0
    faults_injected: int = 0  # verbs perturbed by an attached FaultPlan

    def count_verb(self, op: Verb) -> None:
        # Exact-class dispatch: the verb set is closed (no subclassing),
        # and this runs once per verb of every benchmark op.
        cls = op.__class__
        if cls is ReadOp:
            self.reads += 1
            self.bytes_read += op.size
        elif cls is WriteOp:
            self.writes += 1
            self.bytes_written += len(op.data)
        elif cls is CasOp:
            self.cas += 1
        elif cls is FaaOp:
            self.faa += 1
        else:  # pragma: no cover - descriptor set is closed
            raise SimulationError(f"unknown verb {op!r}")
        self.messages += 1

    def merge(self, other: "OpStats") -> None:
        for name in self.__dataclass_fields__:
            setattr(self, name, getattr(self, name) + getattr(other, name))


# --------------------------------------------------------------------------
# Shared verb semantics
# --------------------------------------------------------------------------

def apply_verb(memories: Mapping[int, Memory], op: Verb) -> Any:
    """Execute a verb's memory side effect and return its result."""
    memory = memories[addr_mn(op.addr)]
    offset = addr_offset(op.addr)
    cls = op.__class__
    if cls is ReadOp:
        return memory.read(offset, op.size)
    if cls is WriteOp:
        memory.write(offset, op.data)
        return None
    if cls is CasOp:
        return memory.cas_u64(offset, op.expected, op.desired)
    if cls is FaaOp:
        return memory.faa_u64(offset, op.delta)
    raise SimulationError(f"unknown verb {op!r}")


def _verb_sizes(op: Verb) -> Tuple[int, int]:
    """(request payload bytes, response payload bytes) for timing."""
    cls = op.__class__
    if cls is ReadOp:
        return 0, op.size
    if cls is WriteOp:
        return len(op.data), 0
    if cls is CasOp:
        return 16, 8
    if cls is FaaOp:
        return 8, 8
    raise SimulationError(f"unknown verb {op!r}")


# --------------------------------------------------------------------------
# Executors
# --------------------------------------------------------------------------

class DirectExecutor:
    """Runs op generators instantly against simulated memory.

    Verbs still update :class:`OpStats`, so tests can assert round-trip
    counts (the paper's central metric) without running the clock.
    """

    def __init__(self, memories: Mapping[int, Memory],
                 stats: OpStats | None = None, *,
                 monitor=None, client_id: str = "direct",
                 clock: Optional[Callable[[], int]] = None,
                 injector=None, tracer=None, lease_hook=None):
        self._memories = memories
        self.stats = stats if stats is not None else OpStats()
        self.monitor = monitor
        self.client_id = client_id
        self._clock = clock if clock is not None else (lambda: 0)
        self._injector = injector
        self._tracer = tracer
        self._lease_hook = lease_hook
        self._apply_entry = self._apply if injector is None \
            else self._apply_faulted
        self._budget = 0  # message ceiling armed by arm_verb_budget
        self._crashed = False  # latched by a crash_cn decision

    def arm_verb_budget(self, extra_messages: int) -> None:
        """Fail with SimulationError once ``stats.messages`` exceeds its
        current value plus ``extra_messages`` - the chaos suite's
        livelock bound ("never a hang")."""
        self._budget = self.stats.messages + extra_messages

    def _apply(self, verb: Verb) -> Any:
        monitor = self.monitor
        tracer = self._tracer
        if monitor is None and tracer is None \
                and self._lease_hook is None:
            return apply_verb(self._memories, verb)
        now = self._clock()
        if monitor is None:
            result = apply_verb(self._memories, verb)
        else:
            token = monitor.on_issue(self.client_id, verb, now)
            result = apply_verb(self._memories, verb)
            monitor.on_apply(token, now, result)
            monitor.on_complete(token, now)
        if self._lease_hook is not None \
                and getattr(verb, "lease", None) is not None:
            self._lease_hook(self.client_id, verb, result, now)
        if tracer is not None:
            tracer.on_verb(self.client_id, verb, now, now)
        return result

    def _apply_faulted(self, verb: Verb) -> Any:
        """The injector-aware verb path (only bound when a FaultPlan is
        attached, so the clean path stays untouched)."""
        injector = self._injector
        now = self._clock()
        if self._crashed:
            raise ClientCrash(
                f"client {self.client_id} has crashed (crash_cn)",
                client=self.client_id)
        if injector.dead_mns:
            # Before address_ok: a blanked region still passes the range
            # check and would hand back all-zero "data" - silent wrong
            # answers instead of a typed failure.
            mn = addr_mn(verb.addr)
            if injector.mn_dead(mn):
                injector.record_mn_unavailable(self.client_id, verb, now)
                self.stats.faults_injected += 1
                raise MNUnavailable(f"MN {mn} crashed (crash_mn)",
                                    mn=mn, addr=verb.addr)
        if not injector.address_ok(verb):
            injector.record_nak(self.client_id, verb, now)
            self.stats.faults_injected += 1
            raise InjectedFault("NAK: unreachable address",
                                kind="nak", addr=verb.addr)
        decision = injector.decide(self.client_id, verb, now)
        if decision is None:
            return self._apply(verb)
        self.stats.faults_injected += 1
        kind = decision.kind
        tracer = self._tracer
        if kind == "crash_cn":
            self._crashed = True
            applied = decision.applied
            if applied:
                self._apply(verb)  # the request escaped the dying NIC
            raise ClientCrash(
                f"client {self.client_id} crashed (crash_cn)",
                client=self.client_id, applied=applied)
        if kind == "drop":
            if decision.applied:
                self._apply(verb)  # side effect lands, completion lost
                if tracer is not None:
                    tracer.tag_verb(self.client_id, "drop")
            raise InjectedFault("completion dropped", kind="drop",
                                addr=verb.addr, applied=decision.applied)
        if kind == "delay":  # untimed executor: a delay is invisible
            result = self._apply(verb)
        elif kind == "duplicate":
            result = self._apply(verb)
            apply_verb(self._memories, verb)  # phantom retransmission
        elif kind == "stale_cas":
            result = self._apply(verb)
            if verb.__class__ is CasOp and result[0]:
                result = (False, verb.expected)
        else:
            raise SimulationError(f"unknown fault decision {kind!r}")
        if tracer is not None:
            tracer.tag_verb(self.client_id, kind)
        return result

    def execute(self, op: OpOrBatch) -> Any:
        if self._budget and self.stats.messages > self._budget:
            raise SimulationError(
                f"verb budget exceeded for {self.client_id}: "
                f"{self.stats.messages} messages - livelock under faults?")
        cls = op.__class__
        if cls is LocalCompute:
            self.stats.local_compute_ns += op.ns
            return None
        if cls is Batch:
            self.stats.batches += 1
            self.stats.round_trips += 1
            results = []
            if self._injector is None:
                for verb in op.ops:
                    self.stats.count_verb(verb)
                    results.append(self._apply(verb))
                return results
            # Doorbell under faults: every verb was posted, so surviving
            # members still apply; the batch completion is lost if any
            # member's completion is.
            failure = None
            for verb in op.ops:
                self.stats.count_verb(verb)
                try:
                    results.append(self._apply_faulted(verb))
                except InjectedFault as exc:
                    failure = exc
                    results.append(None)
            if failure is not None:
                raise failure
            return results
        self.stats.round_trips += 1
        self.stats.count_verb(op)
        return self._apply_entry(op)

    def run(self, gen: OpGenerator) -> Any:
        """Drive ``gen`` to completion; returns its return value.

        Injected faults are delivered *into* the client generator with
        ``gen.throw`` - the client sees them at its ``yield``, exactly
        where a real completion error would surface.
        """
        if self._tracer is not None:
            return self._run_traced(gen)
        result = None
        pending: Exception | None = None
        while True:
            try:
                if pending is not None:
                    exc, pending = pending, None
                    op = gen.throw(exc)
                else:
                    op = gen.send(result)
            except StopIteration as stop:
                return stop.value
            except RetryLimitExceeded as exc:
                exc.attach_context(self.client_id, replace(self.stats))
                if self._injector is not None:
                    exc.attach_fault_trace(self._injector.trace_tuple())
                raise
            try:
                result = self.execute(op)
            except (InjectedFault, MNUnavailable) as exc:
                # Both are delivered into the generator so clients can
                # retry (InjectedFault) or degrade (MNUnavailable) at
                # the yield; ClientCrash deliberately is NOT - a dead CN
                # runs no cleanup, so the generator is just abandoned.
                pending = exc
                result = None

    def _run_traced(self, gen: OpGenerator) -> Any:
        """The :meth:`run` loop with span bracketing (only entered when a
        tracer is attached, so the clean path stays allocation-free)."""
        tracer = self._tracer
        span = tracer.op_begin(self.client_id,
                               getattr(gen, "__name__", "op"), self._clock())
        status = "error"
        try:
            result = None
            pending: Exception | None = None
            while True:
                try:
                    if pending is not None:
                        exc, pending = pending, None
                        op = gen.throw(exc)
                    else:
                        op = gen.send(result)
                except StopIteration as stop:
                    status = "ok"
                    return stop.value
                except RetryLimitExceeded as exc:
                    status = "failed"
                    exc.attach_context(self.client_id, replace(self.stats))
                    if self._injector is not None:
                        exc.attach_fault_trace(self._injector.trace_tuple())
                    raise
                if op.__class__ is not LocalCompute:
                    tracer.on_round_trip(span)
                try:
                    result = self.execute(op)
                except InjectedFault as exc:
                    tracer.on_fault(self.client_id, exc.kind,
                                    exc.addr or 0, self._clock())
                    pending = exc
                    result = None
                except MNUnavailable as exc:
                    tracer.on_fault(self.client_id, "mn_unavailable",
                                    exc.addr or 0, self._clock())
                    pending = exc
                    result = None
        finally:
            tracer.op_end(span, self._clock(), status)


#: Returned by ``SimExecutor._scalar_sync`` when it declines an op
#: (multi-unit NIC); distinct from any legitimate verb result.
_SYNC_MISS = object()


class _VerbTrip:
    """Continuation object driving one clean verb through its four NIC
    stages without a generator frame.

    Registered as the single callback (``_cb1``) of each stage's pooled
    timeout, it performs exactly the work :meth:`SimExecutor._verb` does
    at the matching resume point - same NIC charges at the same simulated
    times, events created in the same order - so the schedule (and every
    committed baseline) is bit-identical to the generator path.  Stage 0
    exists only for batch members, standing in for the member process
    bootstrap; scalar verbs start at stage 1 with the sizes precomputed
    by :meth:`SimExecutor._scalar_fast`.  ``worker`` is the client
    process to resume with the result (scalar verbs); batch members
    instead report into their :class:`_BatchTrip` join context.  Spent
    stage timeouts are recycled into the engine's slab pool (the
    refcount-3 check proves the dispatch loop and this frame hold the
    only references).
    """

    __slots__ = ("ex", "op", "worker", "ctx", "idx",
                 "mn", "req", "resp", "extra", "result", "stage")

    def __init__(self, ex: "SimExecutor", op: Verb,
                 worker, ctx: "_BatchTrip | None" = None, idx: int = 0):
        self.ex = ex
        self.op = op
        self.worker = worker
        self.ctx = ctx
        self.idx = idx
        self.result = None
        self.stage = 0

    def __call__(self, event: SimEvent) -> None:
        ex = self.ex
        engine = ex.engine
        cfg = ex._config
        stage = self.stage
        self.stage = stage + 1
        if stage == 0:
            # Batch-member boot: what _verb does before its first yield.
            op = self.op
            ex.stats.count_verb(op)
            self.mn = ex._mn_nics[addr_mn(op.addr)]
            self.req, self.resp = _verb_sizes(op)
            cls = op.__class__
            self.extra = cfg.atomic_extra_ns \
                if (cls is CasOp or cls is FaaOp) else 0
            done = ex._cn_nic.charge(self.req)
            nxt = engine.timeout(done - engine.now)
            nxt._cb1 = self
        elif stage == 1:
            # CN request sent; request crosses the wire to the MN NIC.
            done = self.mn.charge(self.req, self.extra, cfg.prop_ns)
            nxt = engine.timeout(done - engine.now)
            nxt._cb1 = self
        elif stage == 2:
            # MN NIC executed the verb: side effect lands now.
            op = self.op
            result = self.result = apply_verb(ex._memories, op)
            if ex._lease_hook is not None \
                    and getattr(op, "lease", None) is not None:
                ex._lease_hook(ex.client_id, op, result, engine.now)
            done = self.mn.charge(self.resp, 0, cfg.mem_access_ns)
            nxt = engine.timeout(done - engine.now)
            nxt._cb1 = self
        elif stage == 3:
            # Response back across the wire through the CN NIC.
            done = ex._cn_nic.charge(self.resp, 0, cfg.prop_ns)
            worker = self.worker
            if worker is not None:
                # Scalar verb: resume the client process with the result,
                # exactly where the generator path's return would land it.
                nxt = engine.timeout(done - engine.now, self.result)
                nxt._proc = worker
            else:
                nxt = engine.timeout(done - engine.now)
                nxt._cb1 = self
        else:
            # Batch member complete: stands in for the member Process
            # event the generator path queues at this exact moment.
            ctx = self.ctx
            ctx.results[self.idx] = self.result
            done_ev = SimEvent(engine)
            done_ev._value = self.result
            done_ev._cb1 = ctx
            engine._queue_event(done_ev)
        if type(event) is SimTimeout and sys.getrefcount(event) == 3 \
                and len(engine._pool) < _POOL_CAP:
            event._value = PENDING
            event._cb1 = None
            engine._pool.append(event)


class _BatchTrip:
    """Join counter for a doorbell batch driven by member trips.

    Registered as the callback of each member-completion event; when the
    last member reports, it queues the batch-completion event that
    resumes the client - standing in for the generator path's
    :class:`AllOf` at the identical event position, with results in
    member order.
    """

    __slots__ = ("engine", "worker", "results", "remaining")

    def __init__(self, engine, worker, n: int):
        self.engine = engine
        self.worker = worker
        self.results: list = [None] * n
        self.remaining = n

    def __call__(self, _event: SimEvent) -> None:
        self.remaining -= 1
        if self.remaining == 0:
            engine = self.engine
            done = SimEvent(engine)
            done._value = self.results
            done._proc = self.worker
            engine._queue_event(done)


class SimExecutor:
    """Runs op generators under the discrete-event clock.

    :meth:`run` is itself a generator of engine events, so client processes
    compose it with ``yield from`` (or hand it to ``engine.process``).
    """

    def __init__(self, engine, memories: Mapping[int, Memory],
                 cn_nic: Nic, mn_nics: Mapping[int, Nic],
                 config, stats: OpStats | None = None, *,
                 monitor=None, client_id: str = "sim",
                 injector=None, tracer=None, lease_hook=None):
        self.engine = engine
        self._memories = memories
        self._cn_nic = cn_nic
        self._mn_nics = mn_nics
        self._config = config
        self.stats = stats if stats is not None else OpStats()
        self.monitor = monitor
        self.client_id = client_id
        self._injector = injector
        self._tracer = tracer
        self._lease_hook = lease_hook
        self._verb_entry = self._verb if injector is None \
            else self._verb_faulted
        self._budget = 0  # message ceiling armed by arm_verb_budget
        self._crashed = False  # latched by a crash_cn decision
        self._vector = vector_enabled()
        # Verb trips (continuation objects replacing the per-stage
        # generator resume; event-stream-identical to _verb) need the
        # fast dispatch loop and an unobserved schedule: an injector or
        # tracer routes back through the generator paths those features
        # hook.  A monitor is checked per-op in run() since it can be
        # attached after construction.
        self._trips = (injector is None and tracer is None
                       and not engine._slow)
        self._sync_memo: dict = {}  # (mn, req, resp, extra) -> offsets

    def arm_verb_budget(self, extra_messages: int) -> None:
        """See :meth:`DirectExecutor.arm_verb_budget`."""
        self._budget = self.stats.messages + extra_messages

    # -- single verb ----------------------------------------------------
    def _verb(self, op: Verb):
        """Timed execution of one verb (a generator of engine events)."""
        cfg = self._config
        mn_nic = self._mn_nics[addr_mn(op.addr)]
        req_bytes, resp_bytes = _verb_sizes(op)
        cls = op.__class__
        extra = cfg.atomic_extra_ns if (cls is CasOp or cls is FaaOp) else 0
        self.stats.count_verb(op)
        monitor = self.monitor
        tracer = self._tracer
        token = None
        t0 = self.engine.now if tracer is not None else 0
        if monitor is not None:
            token = monitor.on_issue(self.client_id, op, self.engine.now)

        # Request through the CN NIC ...
        yield self._cn_nic.process(req_bytes)
        # ... across the wire, processed by the MN NIC ...
        yield mn_nic.process(req_bytes, extra_ns=extra,
                             arrive_delay=cfg.prop_ns)
        # Side effect happens the instant the MN NIC executes the verb.
        result = apply_verb(self._memories, op)
        if monitor is not None:
            monitor.on_apply(token, self.engine.now, result)
        if self._lease_hook is not None \
                and getattr(op, "lease", None) is not None:
            self._lease_hook(self.client_id, op, result, self.engine.now)
        # Response: DRAM/DMA access, back through the MN NIC ...
        yield mn_nic.process(resp_bytes, arrive_delay=cfg.mem_access_ns)
        # ... across the wire, delivered by the CN NIC.
        yield self._cn_nic.process(resp_bytes, arrive_delay=cfg.prop_ns)
        if monitor is not None:
            monitor.on_complete(token, self.engine.now)
        if tracer is not None:
            tracer.on_verb(self.client_id, op, t0, self.engine.now)
        return result

    def _verb_faulted(self, op: Verb):
        """Injector-aware timed verb path (only bound when a FaultPlan is
        attached; the clean ``_verb`` path is byte-identical to before)."""
        injector = self._injector
        engine = self.engine
        if self._budget and self.stats.messages > self._budget:
            raise SimulationError(
                f"verb budget exceeded for {self.client_id}: "
                f"{self.stats.messages} messages - livelock under faults?")
        tracer = self._tracer
        t0 = engine.now
        if self._crashed:
            raise ClientCrash(
                f"client {self.client_id} has crashed (crash_cn)",
                client=self.client_id)
        if injector.dead_mns:
            # Before address_ok: a blanked region still passes the range
            # check and would hand back all-zero "data" - silent wrong
            # answers instead of a typed failure.  Charge the send plus
            # one completion timeout, then fail fast (no retry storm).
            mn = addr_mn(op.addr)
            if injector.mn_dead(mn):
                injector.record_mn_unavailable(self.client_id, op,
                                               engine.now)
                self.stats.faults_injected += 1
                req_bytes, _ = _verb_sizes(op)
                yield self._cn_nic.process(req_bytes)
                yield engine.timeout(injector.plan.timeout_ns)
                if tracer is not None:
                    tracer.on_verb(self.client_id, op, t0, engine.now,
                                   fault="mn_unavailable")
                raise MNUnavailable(f"MN {mn} crashed (crash_mn)",
                                    mn=mn, addr=op.addr)
        if not injector.address_ok(op):
            injector.record_nak(self.client_id, op, engine.now)
            self.stats.count_verb(op)
            self.stats.faults_injected += 1
            req_bytes, _ = _verb_sizes(op)
            yield self._cn_nic.process(req_bytes)
            yield engine.timeout(injector.plan.timeout_ns)
            if tracer is not None:
                tracer.on_verb(self.client_id, op, t0, engine.now,
                               fault="nak")
            raise InjectedFault("NAK: unreachable address",
                                kind="nak", addr=op.addr)
        decision = injector.decide(self.client_id, op, engine.now)
        if decision is None:
            result = yield from self._verb(op)
            return result
        self.stats.faults_injected += 1
        kind = decision.kind
        if kind == "crash_cn":
            self._crashed = True
            if not decision.applied:
                # The CN died before the request left its NIC: no side
                # effect, no NIC load, no completion - just a corpse.
                raise ClientCrash(
                    f"client {self.client_id} crashed (crash_cn)",
                    client=self.client_id, applied=False)
            # The request escaped the dying NIC: the side effect lands
            # at the MN.  The monitor sees the full issue/apply/complete
            # life cycle (the access happened; the write interval closes
            # at apply time) so no inflight entry dangles from a corpse.
            cfg = self._config
            req_bytes, _ = _verb_sizes(op)
            self.stats.count_verb(op)
            mn_nic = self._mn_nics[addr_mn(op.addr)]
            cls = op.__class__
            extra = cfg.atomic_extra_ns \
                if (cls is CasOp or cls is FaaOp) else 0
            monitor = self.monitor
            token = None
            if monitor is not None:
                token = monitor.on_issue(self.client_id, op, engine.now)
            yield self._cn_nic.process(req_bytes)
            yield mn_nic.process(req_bytes, extra_ns=extra,
                                 arrive_delay=cfg.prop_ns)
            result = apply_verb(self._memories, op)
            if monitor is not None:
                monitor.on_apply(token, engine.now, result)
                monitor.on_complete(token, engine.now)
            if self._lease_hook is not None \
                    and getattr(op, "lease", None) is not None:
                self._lease_hook(self.client_id, op, result, engine.now)
            if tracer is not None:
                tracer.on_verb(self.client_id, op, t0, engine.now,
                               fault="crash_cn")
            raise ClientCrash(
                f"client {self.client_id} crashed (crash_cn)",
                client=self.client_id, applied=True)
        if kind == "delay":
            result = yield from self._verb(op)
            yield engine.timeout(decision.delay_ns)
            if tracer is not None:
                tracer.tag_verb(self.client_id, kind)
            return result
        if kind == "duplicate":
            result = yield from self._verb(op)
            apply_verb(self._memories, op)  # phantom retransmission
            if tracer is not None:
                tracer.tag_verb(self.client_id, kind)
            return result
        if kind == "stale_cas":
            result = yield from self._verb(op)
            if tracer is not None:
                tracer.tag_verb(self.client_id, kind)
            if op.__class__ is CasOp and result[0]:
                return (False, op.expected)
            return result
        if kind != "drop":  # pragma: no cover - decision set is closed
            raise SimulationError(f"unknown fault decision {kind!r}")
        cfg = self._config
        req_bytes, _ = _verb_sizes(op)
        self.stats.count_verb(op)
        if not decision.applied:
            # Request lost in the fabric: the MN never saw it.  Charge
            # the send plus the client's completion timeout.
            yield self._cn_nic.process(req_bytes)
            yield engine.timeout(injector.plan.timeout_ns)
            if tracer is not None:
                tracer.on_verb(self.client_id, op, t0, engine.now,
                               fault="drop")
            raise InjectedFault("request dropped", kind="drop",
                                addr=op.addr, applied=False)
        # Applied at the MN; the completion never arrives.  The monitor
        # sees the full issue/apply/complete life cycle - the access
        # happened - with completion at the client's timeout decision.
        mn_nic = self._mn_nics[addr_mn(op.addr)]
        cls = op.__class__
        extra = cfg.atomic_extra_ns if (cls is CasOp or cls is FaaOp) else 0
        monitor = self.monitor
        token = None
        if monitor is not None:
            token = monitor.on_issue(self.client_id, op, engine.now)
        yield self._cn_nic.process(req_bytes)
        yield mn_nic.process(req_bytes, extra_ns=extra,
                             arrive_delay=cfg.prop_ns)
        result = apply_verb(self._memories, op)
        if monitor is not None:
            monitor.on_apply(token, engine.now, result)
        if self._lease_hook is not None \
                and getattr(op, "lease", None) is not None:
            self._lease_hook(self.client_id, op, result, engine.now)
        yield engine.timeout(injector.plan.timeout_ns)
        if monitor is not None:
            monitor.on_complete(token, engine.now)
        if tracer is not None:
            tracer.on_verb(self.client_id, op, t0, engine.now, fault="drop")
        raise InjectedFault("completion dropped", kind="drop",
                            addr=op.addr, applied=True)

    def _perform(self, op: OpOrBatch):
        cls = op.__class__
        if cls is LocalCompute:
            self.stats.local_compute_ns += op.ns
            yield self.engine.timeout(op.ns)
            return None
        if cls is Batch:
            self.stats.batches += 1
            self.stats.round_trips += 1
            if self._injector is not None:
                # Doorbell under faults: members run sequentially so a
                # dropped completion can surface per member; surviving
                # members still apply, the batch completion is lost if
                # any member's completion is.
                results = []
                failure = None
                for verb in op.ops:
                    try:
                        member = yield from self._verb_faulted(verb)
                    except InjectedFault as exc:
                        failure = exc
                        member = None
                    results.append(member)
                if failure is not None:
                    raise failure
                return results
            procs = [self.engine.process(self._verb(verb), name="verb")
                     for verb in op.ops]
            results = yield self.engine.all_of(procs)
            return results
        self.stats.round_trips += 1
        result = yield from self._verb_entry(op)
        return result

    # -- verb trips (clean fast path) -------------------------------------
    def _scalar_fast(self, op: Verb, worker) -> None:
        """Issue one clean verb as an event-per-stage :class:`_VerbTrip`
        whose schedule is bit-identical to :meth:`_verb`."""
        stats = self.stats
        stats.round_trips += 1
        stats.count_verb(op)
        engine = self.engine
        cfg = self._config
        cls = op.__class__
        trip = _VerbTrip(self, op, worker)
        trip.mn = self._mn_nics[addr_mn(op.addr)]
        trip.req, trip.resp = _verb_sizes(op)
        trip.extra = cfg.atomic_extra_ns \
            if (cls is CasOp or cls is FaaOp) else 0
        trip.stage = 1
        t1 = engine.timeout(self._cn_nic.charge(trip.req) - engine.now)
        t1._cb1 = trip

    def _sync_offsets(self, key):
        """Precompute the per-(mn, sizes, extra) arithmetic of one idle
        round trip, plus the objects the hot loop would otherwise chase
        through attribute/dict lookups; None marks a shape the sync path
        must decline (multi-unit NIC: its free time is a heap, not a
        scalar)."""
        mn_id, req, resp, extra = key
        cn = self._cn_nic
        mn = self._mn_nics[mn_id]
        if cn.server.capacity != 1 or mn.server.capacity != 1:
            return None
        cfg = self._config
        cn_req = cn.service_ns(req)
        mn_req = mn.service_ns(req) + extra
        mn_resp = mn.service_ns(resp)
        cn_resp = cn.service_ns(resp)
        o2 = cn_req + cfg.prop_ns + mn_req
        o3 = o2 + cfg.mem_access_ns + mn_resp
        o4 = o3 + cfg.prop_ns + cn_resp
        return (o2, o3, o4, cn_req + cn_resp, mn_req + mn_resp,
                req + resp, mn, mn.server, cn.server,
                self._memories[mn_id])

    def _scalar_sync(self, op: Verb):
        """Idle-engine scalar verb: the whole four-stage round trip as
        closed-form arithmetic - the clock jumps to the completion time,
        no event is created at all, and the result returns synchronously.

        Exact because the caller verified both engine queues are empty:
        nothing exists to interleave with, so every stage starts the
        instant it arrives (each station's free time is necessarily in
        the past - its last completion event already fired).  All four
        logical events are accounted; NIC counters advance exactly as
        the per-stage path would.  Returns ``_SYNC_MISS`` (declining,
        nothing touched) for multi-unit NICs.

        The single exact-class dispatch below folds together what
        :func:`_verb_sizes`, :meth:`OpStats.count_verb`, and
        :func:`apply_verb` would each dispatch separately; the stats
        fields and Memory methods are the same ones those helpers hit,
        in the same order.
        """
        stats = self.stats
        cls = op.__class__
        addr = op.addr
        if cls is ReadOp:
            size = op.size
            key = (addr >> OFFSET_BITS, 0, size, 0)
        elif cls is WriteOp:
            key = (addr >> OFFSET_BITS, len(op.data), 0, 0)
        elif cls is CasOp:
            key = (addr >> OFFSET_BITS, 16, 8,
                   self._config.atomic_extra_ns)
        else:
            key = (addr >> OFFSET_BITS, 8, 8,
                   self._config.atomic_extra_ns)
        memo = self._sync_memo
        offs = memo.get(key)
        if offs is None:
            if key in memo:
                return _SYNC_MISS
            offs = self._sync_offsets(key)
            memo[key] = offs
            if offs is None:
                return _SYNC_MISS
        (o2, o3, o4, cn_busy, mn_busy, payload,
         mn, mn_server, cn_server, memory) = offs
        offset = addr & OFFSET_MASK
        if cls is ReadOp:
            stats.reads += 1
            stats.bytes_read += size
            result = memory.read(offset, size)
        elif cls is WriteOp:
            data = op.data
            stats.writes += 1
            stats.bytes_written += len(data)
            memory.write(offset, data)
            result = None
        elif cls is CasOp:
            stats.cas += 1
            result = memory.cas_u64(offset, op.expected, op.desired)
        else:
            stats.faa += 1
            result = memory.faa_u64(offset, op.delta)
        stats.messages += 1
        stats.round_trips += 1
        engine = self.engine
        now = engine.now
        if self._lease_hook is not None \
                and getattr(op, "lease", None) is not None:
            self._lease_hook(self.client_id, op, result, now + o2)
        cn = self._cn_nic
        cn.messages += 2
        cn.payload_bytes += payload
        cn_server.jobs += 2
        cn_server.busy_time += cn_busy
        cn_server._free1 = now + o4
        mn.messages += 2
        mn.payload_bytes += payload
        mn_server.jobs += 2
        mn_server.busy_time += mn_busy
        mn_server._free1 = now + o3
        engine.now = now + o4
        engine.events_processed += 4
        return result

    def _batch_fast(self, op: Batch, worker):
        """Issue a clean doorbell batch.  Returns the results list when
        the whole batch completed synchronously (idle engine, one MN, no
        deadline armed); returns None after scheduling events (the
        caller must ``yield _DEFER``)."""
        stats = self.stats
        stats.batches += 1
        stats.round_trips += 1
        engine = self.engine
        ops = op.ops
        if (self._vector and engine._deadline is None
                and not engine._fifo and not engine._heap):
            mn_id = addr_mn(ops[0].addr)
            for verb in ops:
                if addr_mn(verb.addr) != mn_id:
                    mn_id = -1
                    break
            if mn_id >= 0:
                closed = self._batch_closed(ops, self._mn_nics[mn_id])
                if closed is not None:
                    results, end = closed
                    engine.now = end
                    # All 6N+1 logical events (N boots, 4N stages, N
                    # member completions, the batch completion) happen
                    # arithmetically.
                    engine.events_processed += 6 * len(ops) + 1
                    return results
        # Event-driven member trips: one zero-delay boot per member in
        # member order, exactly where the generator path boots its member
        # processes; the join context stands in for the AllOf.
        ctx = _BatchTrip(engine, worker, len(ops))
        for idx, verb in enumerate(ops):
            boot = engine.timeout(0)
            boot._cb1 = _VerbTrip(self, verb, None, ctx, idx)
        return None

    def _batch_closed(self, ops, mn_nic: Nic):
        """Whole-doorbell closed form: every member's four stage
        completions as prefix sums / running maxes over the FIFO
        recurrences (numpy for long batches, scalar twins otherwise).

        Only valid when the member submission order *is* the FIFO service
        order at the MN NIC: all N requests must clear the CN NIC before
        the first response reaches the MN, else request/response service
        would interleave there and the stage-wise chains below would
        misorder the queue.  Returns None (touching nothing) when that
        guard fails - the caller falls back to event-driven member trips
        - else ``(results, completion_time)``.
        """
        engine = self.engine
        cfg = self._config
        cn = self._cn_nic
        req: list = []
        resp: list = []
        extras: list = []
        atomic = cfg.atomic_extra_ns
        for verb in ops:
            r, p = _verb_sizes(verb)
            req.append(r)
            resp.append(p)
            cls = verb.__class__
            extras.append(atomic if (cls is CasOp or cls is FaaOp) else 0)
        # Guard (pure arithmetic, no counters touched yet): with the
        # engine idle every station is free, so member i's request clears
        # the CN NIC at t0 + cumsum(cn_svc)[i] and the first response is
        # submitted to the MN NIC at t0 + cn_svc[0] + prop + mn_svc[0].
        cn_tail = 0
        for r in req[1:]:
            cn_tail += cn.service_ns(r)
        if cfg.prop_ns + mn_nic.service_ns(req[0]) + extras[0] <= cn_tail:
            return None
        prop = cfg.prop_ns
        d1 = cn.charge_burst(req)
        d2 = mn_nic.charge_chain(d1, req, extras, offset=prop)
        stats = self.stats
        memory = self._memories[addr_mn(ops[0].addr)]
        lease_hook = self._lease_hook
        client_id = self.client_id
        results = []
        append = results.append
        # One exact-class dispatch per member folds OpStats.count_verb
        # and apply_verb together (same fields, same Memory methods).
        for verb, done in zip(ops, d2):
            cls = verb.__class__
            offset = verb.addr & OFFSET_MASK
            if cls is ReadOp:
                size = verb.size
                stats.reads += 1
                stats.bytes_read += size
                result = memory.read(offset, size)
            elif cls is WriteOp:
                data = verb.data
                stats.writes += 1
                stats.bytes_written += len(data)
                memory.write(offset, data)
                result = None
            elif cls is CasOp:
                stats.cas += 1
                result = memory.cas_u64(offset, verb.expected,
                                        verb.desired)
            else:
                stats.faa += 1
                result = memory.faa_u64(offset, verb.delta)
            if lease_hook is not None \
                    and getattr(verb, "lease", None) is not None:
                lease_hook(client_id, verb, result, done)
            append(result)
        stats.messages += len(ops)
        d3 = mn_nic.charge_chain(d2, resp, offset=cfg.mem_access_ns)
        d4 = cn.charge_chain(d3, resp, offset=prop)
        return results, d4[-1]

    # -- generator driver -------------------------------------------------
    def run(self, gen: OpGenerator):
        """Drive ``gen`` under the clock; yields engine events throughout.

        Injected faults are delivered into the client generator with
        ``gen.throw``, exactly like :meth:`DirectExecutor.run`.
        """
        if self._tracer is not None:
            result = yield from self._run_traced(gen)
            return result
        result = None
        pending: Exception | None = None
        trips = self._trips
        engine = self.engine
        while True:
            try:
                if pending is not None:
                    exc, pending = pending, None
                    op = gen.throw(exc)
                else:
                    op = gen.send(result)
            except StopIteration as stop:
                return stop.value
            except RetryLimitExceeded as exc:
                exc.attach_context(self.client_id, replace(self.stats))
                if self._injector is not None:
                    exc.attach_fault_trace(self._injector.trace_tuple())
                raise
            if trips and self.monitor is None:
                # Clean fast path: complete the op synchronously (idle
                # engine, closed-form arithmetic, no events) or post it
                # as a trip and tell the dispatch loop we already
                # subscribed ourselves.  engine._active is the process
                # currently being dispatched - our driving client - and
                # is None when this generator is stepped by hand, which
                # falls back to the yield-per-stage path below.
                worker = engine._active
                if worker is not None:
                    cls = op.__class__
                    if cls is ReadOp or cls is WriteOp \
                            or cls is CasOp or cls is FaaOp:
                        if (self._vector and engine._deadline is None
                                and not engine._fifo and not engine._heap):
                            fast = self._scalar_sync(op)
                            if fast is not _SYNC_MISS:
                                result = fast
                                continue
                        self._scalar_fast(op, worker)
                        result = yield _DEFER
                        continue
                    if cls is Batch:
                        fast = self._batch_fast(op, worker)
                        if fast is not None:
                            result = fast
                            continue
                        result = yield _DEFER
                        continue
            try:
                result = yield from self._perform(op)
            except (InjectedFault, MNUnavailable) as exc:
                # Delivered into the generator (retry vs. degrade at the
                # yield); ClientCrash is NOT - the generator of a dead
                # CN is abandoned with its locks still held.
                pending = exc
                result = None

    def _run_traced(self, gen: OpGenerator):
        """The :meth:`run` loop with span bracketing (only entered when a
        tracer is attached; the traced schedule stays bit-identical
        because the tracer never creates engine events)."""
        tracer = self._tracer
        engine = self.engine
        span = tracer.op_begin(self.client_id,
                               getattr(gen, "__name__", "op"), engine.now)
        status = "error"
        try:
            result = None
            pending: Exception | None = None
            while True:
                try:
                    if pending is not None:
                        exc, pending = pending, None
                        op = gen.throw(exc)
                    else:
                        op = gen.send(result)
                except StopIteration as stop:
                    status = "ok"
                    return stop.value
                except RetryLimitExceeded as exc:
                    status = "failed"
                    exc.attach_context(self.client_id, replace(self.stats))
                    if self._injector is not None:
                        exc.attach_fault_trace(self._injector.trace_tuple())
                    raise
                if op.__class__ is not LocalCompute:
                    tracer.on_round_trip(span)
                try:
                    result = yield from self._perform(op)
                except InjectedFault as exc:
                    tracer.on_fault(self.client_id, exc.kind,
                                    exc.addr or 0, engine.now)
                    pending = exc
                    result = None
                except MNUnavailable as exc:
                    tracer.on_fault(self.client_id, "mn_unavailable",
                                    exc.addr or 0, engine.now)
                    pending = exc
                    result = None
        finally:
            tracer.op_end(span, engine.now, status)
