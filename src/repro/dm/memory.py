"""Simulated memory-node (MN) memory.

Each memory node owns a flat byte-addressable region.  Remote pointers are
the paper's 48-bit addresses: the top 8 bits name the memory node and the
low 40 bits are an offset into its region, so a pointer fits in an 8-byte
slot/hash-entry alongside its metadata (Fig 3).

The allocator is a bump allocator with per-size free lists and
**per-category byte accounting**, which is what makes the space-consumption
experiment (Fig 6) a real measurement rather than an estimate.
"""

from __future__ import annotations

import bisect
import struct
from collections import defaultdict
from typing import Dict, List, Optional, Tuple

from ..errors import BadAddress, DoubleFree, InvalidArgument, OutOfMemory, \
    UseAfterFree

ADDR_BITS = 48
OFFSET_BITS = 40
MN_ID_BITS = ADDR_BITS - OFFSET_BITS
OFFSET_MASK = (1 << OFFSET_BITS) - 1
NULL_ADDR = 0

_U64 = struct.Struct("<Q")


def make_addr(mn_id: int, offset: int) -> int:
    """Pack (memory node, offset) into a 48-bit global address."""
    if not 0 <= mn_id < (1 << MN_ID_BITS):
        raise BadAddress(f"mn_id {mn_id} out of range")
    if not 0 <= offset <= OFFSET_MASK:
        raise BadAddress(f"offset {offset} out of range")
    return (mn_id << OFFSET_BITS) | offset


def addr_mn(addr: int) -> int:
    """The memory node id encoded in a global address."""
    return addr >> OFFSET_BITS


def addr_offset(addr: int) -> int:
    """The within-node offset encoded in a global address."""
    return addr & OFFSET_MASK


def format_addr(addr: int) -> str:
    """Human-readable rendering for logs and error messages."""
    if addr == NULL_ADDR:
        return "NULL"
    return f"mn{addr_mn(addr)}+0x{addr_offset(addr):x}"


class Memory:
    """The DRAM of one memory node.

    Offsets below 64 are reserved so that global address 0 can serve as
    NULL.  ``alloc``/``free`` track net allocated bytes per category
    (``"inner"``, ``"leaf"``, ``"hash_table"`` ...), giving Fig 6 its data.
    """

    def __init__(self, mn_id: int, capacity: int):
        if capacity <= 64:
            raise InvalidArgument(
                "capacity must exceed the 64-byte reserved page")
        self.mn_id = mn_id
        self.capacity = capacity
        # The backing store grows on demand: `capacity` is the logical
        # budget, but committing it eagerly would cost gigabytes of host
        # RAM per simulated MN.
        self._data = bytearray(min(capacity, 1 << 20))
        self._bump = 64  # offset 0..63 reserved: addr 0 == NULL
        self._free_lists: Dict[int, List[int]] = defaultdict(list)
        self.allocated_by_category: Dict[str, int] = defaultdict(int)
        self.alloc_calls = 0
        self.free_calls = 0
        # Freed-region registry: every block currently sitting on a free
        # list, kept sorted by offset for overlap queries.  `free()` of a
        # range overlapping these (or a retired block) is a double free;
        # data-plane verbs landing in these are use-after-free.
        self._freed_offsets: List[int] = []       # sorted
        self._freed_sizes: Dict[int, int] = {}    # offset -> size
        self._retired: Dict[int, int] = {}        # offset -> size
        self.uaf_policy = "flag"                  # "ignore" | "flag" | "raise"
        self.uaf_hits = 0
        self.uaf_samples: List[str] = []
        # Optional allocation observer (e.g. a DMSan AccessMonitor): an
        # object with on_alloc/on_free/on_retire(mn_id, offset, size,
        # category) methods.
        self.tracker = None

    # -- freed-region registry -----------------------------------------
    def _freed_overlap(self, offset: int, size: int
                       ) -> Optional[Tuple[int, int]]:
        """The first freed block overlapping [offset, offset+size), if any."""
        if not self._freed_offsets:
            return None
        end = offset + size
        idx = bisect.bisect_right(self._freed_offsets, offset) - 1
        if idx >= 0:
            f_off = self._freed_offsets[idx]
            if f_off + self._freed_sizes[f_off] > offset:
                return f_off, self._freed_sizes[f_off]
        idx += 1
        if idx < len(self._freed_offsets) and self._freed_offsets[idx] < end:
            f_off = self._freed_offsets[idx]
            return f_off, self._freed_sizes[f_off]
        return None

    def _register_freed(self, offset: int, size: int) -> None:
        bisect.insort(self._freed_offsets, offset)
        self._freed_sizes[offset] = size

    def _unregister_freed(self, offset: int) -> None:
        idx = bisect.bisect_left(self._freed_offsets, offset)
        del self._freed_offsets[idx]
        del self._freed_sizes[offset]

    def _check_reclaimable(self, offset: int, size: int, verb: str) -> None:
        hit = self._freed_overlap(offset, size)
        if hit is not None:
            raise DoubleFree(
                f"mn{self.mn_id}: {verb}({offset:#x}, {size}) overlaps "
                f"already-freed block ({hit[0]:#x}, {hit[1]})")
        retired = self._retired.get(offset)
        if retired is not None:
            raise DoubleFree(
                f"mn{self.mn_id}: {verb}({offset:#x}, {size}) targets "
                f"retired block of {retired} B")

    def _flag_uaf(self, offset: int, size: int, kind: str) -> None:
        freed = self._freed_overlap(offset, size)
        if freed is None or self.uaf_policy == "ignore":
            return
        message = (f"mn{self.mn_id}: {kind} of ({offset:#x}, {size}) touches "
                   f"freed block ({freed[0]:#x}, {freed[1]})")
        if self.uaf_policy == "raise":
            raise UseAfterFree(message)
        self.uaf_hits += 1
        if len(self.uaf_samples) < 16:
            self.uaf_samples.append(message)

    # -- allocation ----------------------------------------------------
    def alloc(self, size: int, category: str = "generic") -> int:
        """Allocate ``size`` bytes; returns the within-node offset."""
        if size <= 0:
            raise InvalidArgument("allocation size must be positive")
        self.alloc_calls += 1
        self.allocated_by_category[category] += size
        free_list = self._free_lists.get(size)
        if free_list:
            offset = free_list.pop()
            self._unregister_freed(offset)
            self._data[offset:offset + size] = bytes(size)
        else:
            if self._bump + size > self.capacity:
                raise OutOfMemory(
                    f"mn{self.mn_id}: cannot allocate {size} B "
                    f"({self.capacity - self._bump} B left)"
                )
            offset = self._bump
            self._bump += size
        if self.tracker is not None:
            self.tracker.on_alloc(self.mn_id, offset, size, category)
        return offset

    def free(self, offset: int, size: int, category: str = "generic") -> None:
        """Return a block to the per-size free list.

        Freeing a range that overlaps an already freed (or retired) block
        raises :class:`repro.errors.DoubleFree`.
        """
        self._check_range(offset, size)
        self._check_reclaimable(offset, size, "free")
        self.free_calls += 1
        self.allocated_by_category[category] -= size
        self._free_lists[size].append(offset)
        self._register_freed(offset, size)
        if self.tracker is not None:
            self.tracker.on_free(self.mn_id, offset, size, category)

    def retire(self, offset: int, size: int, category: str = "generic") -> None:
        """Account a block as freed *without* recycling its memory.

        Stand-in for epoch-based reclamation: a node that was once visible
        to remote readers may still be read through stale pointers, so its
        memory must not be handed to a new allocation until every reader
        has moved past it.  We model the reclamation point as "after the
        run" (the block simply is not reused), which keeps readers safe
        while the per-category accounting still reflects live data.
        """
        self._check_range(offset, size)
        self._check_reclaimable(offset, size, "retire")
        self.free_calls += 1
        self.allocated_by_category[category] -= size
        self._retired[offset] = size
        if self.tracker is not None:
            self.tracker.on_retire(self.mn_id, offset, size, category)

    def allocated_bytes(self) -> int:
        """Net live bytes across all categories."""
        return sum(self.allocated_by_category.values())

    def footprint_bytes(self) -> int:
        """High-water mark of the bump allocator (includes freed holes)."""
        return self._bump

    # -- data-plane ops (what RDMA verbs ultimately execute) -----------
    def _check_range(self, offset: int, size: int) -> None:
        if size < 0 or offset < 64 or offset + size > self.capacity:
            raise BadAddress(
                f"mn{self.mn_id}: bad range offset={offset} size={size}"
            )
        end = offset + size
        if end > len(self._data):
            # Commit physical backing in growing steps (power-of-two-ish).
            new_len = max(end, min(self.capacity, 2 * len(self._data)))
            self._data.extend(bytes(new_len - len(self._data)))

    def read(self, offset: int, size: int) -> bytes:
        self._check_range(offset, size)
        if self._freed_offsets:
            self._flag_uaf(offset, size, "read")
        # memoryview slice -> one copy; a bytearray slice plus bytes()
        # would copy the payload twice per verb.
        return memoryview(self._data)[offset:offset + size].tobytes()

    def write(self, offset: int, data: bytes) -> None:
        self._check_range(offset, len(data))
        if self._freed_offsets:
            self._flag_uaf(offset, len(data), "write")
        self._data[offset:offset + len(data)] = data

    def read_u64(self, offset: int) -> int:
        self._check_range(offset, 8)
        if self._freed_offsets:
            self._flag_uaf(offset, 8, "read_u64")
        return _U64.unpack_from(self._data, offset)[0]

    def write_u64(self, offset: int, value: int) -> None:
        self._check_range(offset, 8)
        if self._freed_offsets:
            self._flag_uaf(offset, 8, "write_u64")
        _U64.pack_into(self._data, offset, value)

    def cas_u64(self, offset: int, expected: int, desired: int):
        """Atomic 8-byte compare-and-swap; returns (swapped, old_value)."""
        old = self.read_u64(offset)
        if old == expected:
            self.write_u64(offset, desired)
            return True, old
        return False, old

    def faa_u64(self, offset: int, delta: int) -> int:
        """Atomic 8-byte fetch-and-add; returns the pre-add value."""
        old = self.read_u64(offset)
        self.write_u64(offset, (old + delta) & ((1 << 64) - 1))
        return old
