"""Plain-text rendering of experiment results (the paper's tables/series)."""

from __future__ import annotations

from typing import Dict, Iterable, Sequence


def format_table(headers: Sequence[str], rows: Iterable[Sequence]) -> str:
    """Align a list of rows under headers (monospace report style)."""
    str_rows = [[str(c) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = []
    lines.append("  ".join(h.ljust(widths[i]) for i, h in enumerate(headers)))
    lines.append("  ".join("-" * w for w in widths))
    for row in str_rows:
        lines.append("  ".join(cell.ljust(widths[i])
                               for i, cell in enumerate(row)))
    return "\n".join(lines)


def speedup(base: float, other: float) -> float:
    """How many times faster ``other`` is than ``base``."""
    if base <= 0:
        return float("inf")
    return other / base


def mops(value: float, digits: int = 3) -> str:
    return f"{value:.{digits}f}"


def ratio_summary(throughputs: Dict[str, float],
                  winner: str = "Sphinx") -> Dict[str, float]:
    """Winner-vs-each-competitor speedups (the paper's "up to N x")."""
    top = throughputs.get(winner, 0.0)
    return {name: round(speedup(value, top), 2)
            for name, value in throughputs.items() if name != winner}


def banner(title: str) -> str:
    bar = "=" * len(title)
    return f"\n{bar}\n{title}\n{bar}"
