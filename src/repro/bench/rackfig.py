"""The ``rack`` figure family: multi-tenant serving-grid cells.

Beyond the paper's figures (one index, one workload, 3+3 nodes), this
family reports what a rack-scale deployment cares about - per-tenant
goodput and tail latency under weighted sharing and admission control,
and whether the grid survives elastic membership changes:

* ``steady``  - the sharded grid serving the full tenant roster;
* ``rebalance`` - the same grid with one online MN-group join *and* one
  group drain/leave mid-run; the cell must end fsck-clean.
* ``replicated`` (``--replicas K > 0``) - the steady grid with K shard
  replicas per primary; ``--crash-mn-verb N`` additionally kills one MN
  mid-run so the cell exercises online failover and re-replication.
  The K=0 cells are untouched by the new axis, so their schedules (and
  the bit-identity gate over them) are exactly the pre-replication ones.

Each cell contributes a BENCH_RACK perf record (same BENCH_2 schema, its
own baseline file) through the shared :data:`repro.bench.perftrack.
TRACKER`, so the rack-smoke CI job gates host-side wall time with the
exact machinery the other benchmark suites use.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..dm.rack import ClusterSpec, TopologyEvent
from ..tenancy import RackRunResult, default_tenants, run_rack
from .harness import DEFAULT_KEYS, DEFAULT_OPS
from .perftrack import TRACKER
from .reporting import banner, format_table

#: Simulated times of the rebalance cell's membership events: the join
#: lands early so migrations overlap plenty of traffic, the drain starts
#: once the joined group is (typically) settled.
REBALANCE_JOIN_NS = 100_000
REBALANCE_LEAVE_NS = 400_000


@dataclass
class RackFigure:
    """All cells of one rack-family invocation."""

    rows: List[dict] = field(default_factory=list)
    tenant_rows: Dict[str, List[dict]] = field(default_factory=dict)
    topology: Dict[str, List[dict]] = field(default_factory=dict)
    fsck_exits: Dict[str, int] = field(default_factory=dict)
    results: Dict[str, RackRunResult] = field(default_factory=dict)
    #: Per-cell replication digests (only cells run with K > 0).
    replication: Dict[str, dict] = field(default_factory=dict)

    @property
    def fsck_clean(self) -> bool:
        return all(code == 0 for code in self.fsck_exits.values())

    def digest(self) -> dict:
        """JSON-serializable flattening (the CI determinism cell diffs
        two same-seed digests byte-for-byte)."""
        return {
            "rows": self.rows,
            "tenants": self.tenant_rows,
            "topology": self.topology,
            "fsck_exits": self.fsck_exits,
            "replication": self.replication,
        }


def _run_cell(label: str, system: str, spec: ClusterSpec, figure: RackFigure,
              *, tenants, num_keys: int, ops: int, seed: int,
              events=(), chaos_seed: Optional[int] = None,
              fault_plan=None) -> None:
    wall_start = time.perf_counter()
    rr = run_rack(spec, tenants=tenants, num_keys=num_keys,
                  insert_pool=max(64, num_keys // 10), ops=ops, seed=seed,
                  events=events, chaos_seed=chaos_seed,
                  fault_plan=fault_plan)
    wall_s = time.perf_counter() - wall_start
    events_processed = rr.rack.cluster.engine.events_processed
    result = rr.result
    result.system = system
    result.perf = {
        "wall_s": round(wall_s, 3),
        "run_wall_s": round(wall_s, 3),
        "events": events_processed,
        "events_per_s": round(events_processed / wall_s) if wall_s else 0,
        "engine_mode": "rack",
        "sim_ns": result.sim_ns,
        "throughput_mops": round(result.throughput_mops, 4),
    }
    TRACKER.add(result)
    row = result.row()
    row["cell"] = label
    row["tenants"] = len(rr.tenants)
    row["groups"] = len(rr.rack.live_groups())
    row["fsck_exit"] = rr.fsck_exit
    figure.rows.append(row)
    figure.tenant_rows[label] = rr.tenants
    figure.topology[label] = rr.topology
    figure.fsck_exits[label] = rr.fsck_exit
    figure.results[label] = rr
    if rr.replication is not None:
        figure.replication[label] = rr.replication


def rack_family(*, num_cns: int = 8, num_mns: int = 8, group_size: int = 2,
                num_shards: int = 64, clients: int = 64, tenants: int = 16,
                num_keys: int = DEFAULT_KEYS, ops: int = DEFAULT_OPS,
                seed: int = 0, rebalance: bool = True,
                chaos_seed: Optional[int] = None,
                replicas: int = 0,
                crash_mn_verb: Optional[int] = None,
                mn_capacity_bytes: int = 256 << 20) -> RackFigure:
    """Run the rack cell family and return every cell's outputs.

    ``tenants`` picks the deterministic :func:`repro.tenancy.
    default_tenants` roster of that size; ``rebalance=False`` drops the
    membership-change cell (the steady cell always runs).  ``replicas``
    adds the ``replicated`` cell - the steady grid with K shard
    replicas - without perturbing the K=0 cells; ``crash_mn_verb``
    schedules a ``crash_mn`` against the first MN of group 1 at that
    injector verb count inside the replicated cell, so the cell must
    serve through a failover to end fsck-clean.
    """
    spec = ClusterSpec(num_cns=num_cns, num_mns=num_mns,
                       group_size=group_size, num_shards=num_shards,
                       clients=clients, mn_capacity_bytes=mn_capacity_bytes)
    roster = default_tenants(tenants)
    figure = RackFigure()
    _run_cell("steady", "Rack", spec, figure, tenants=roster,
              num_keys=num_keys, ops=ops, seed=seed, chaos_seed=chaos_seed)
    if rebalance:
        events = (TopologyEvent(at_ns=REBALANCE_JOIN_NS, kind="mn_join"),
                  TopologyEvent(at_ns=REBALANCE_LEAVE_NS, kind="mn_leave",
                                group=0))
        _run_cell("rebalance", "Rack+Rebal", spec, figure, tenants=roster,
                  num_keys=num_keys, ops=ops, seed=seed, events=events,
                  chaos_seed=chaos_seed)
    if replicas > 0:
        rspec = ClusterSpec(num_cns=num_cns, num_mns=num_mns,
                            group_size=group_size, num_shards=num_shards,
                            clients=clients, replicas=replicas,
                            mn_capacity_bytes=mn_capacity_bytes)
        fault_plan = None
        if crash_mn_verb is not None:
            from ..fault import FaultPlan, crash_mn  # local: optional dep
            fault_plan = FaultPlan(seed=seed, rules=(
                crash_mn(group_size, at_verb=crash_mn_verb),))
        _run_cell("replicated", f"Rack+Rep{replicas}", rspec, figure,
                  tenants=roster, num_keys=num_keys, ops=ops, seed=seed,
                  fault_plan=fault_plan)
    return figure


def render_rack(figure: RackFigure) -> str:
    """The rack family's tables: aggregate cells, then per-tenant rows."""
    out = [banner("Rack - multi-tenant serving grid")]
    headers = ["cell", "workers", "tenants", "groups", "ops",
               "throughput_mops", "p99_latency_us", "fsck_exit"]
    out.append(format_table(
        headers, [[row[h] for h in headers] for row in figure.rows]))
    for label, rows in figure.tenant_rows.items():
        if not rows:
            continue
        out.append(banner(f"Rack cell '{label}' - per-tenant goodput/p99"))
        headers = list(rows[0].keys())
        out.append(format_table(
            headers, [[row[h] for h in headers] for row in rows]))
    for label, events in figure.topology.items():
        if not events:
            continue
        out.append(banner(f"Rack cell '{label}' - topology events"))
        headers = list(events[0].keys())
        out.append(format_table(
            headers, [[event[h] for h in headers] for event in events]))
    for label, repl in figure.replication.items():
        out.append(banner(f"Rack cell '{label}' - replication/failover"))
        rows = [[k, v] for k, v in sorted(repl.get("counters", {}).items())]
        rows += [[k, repl[k]] for k in ("failover_forfeited_keys",
                                        "mid_migration_failovers",
                                        "max_epoch")]
        out.append(format_table(["counter", "value"], rows))
    return "\n".join(out)
