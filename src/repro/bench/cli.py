"""Command-line entry point: regenerate any paper figure.

Usage::

    python -m repro.bench.cli fig4 --dataset u64
    python -m repro.bench.cli fig5 --dataset email
    python -m repro.bench.cli fig6
    python -m repro.bench.cli ablations
    python -m repro.bench.cli rack --tenants 16 --clients 64
    python -m repro.bench.cli all

The ``rack`` family (not part of ``all``: it has its own BENCH_RACK
baseline) runs the multi-tenant serving grid - sharded MN groups, a
weighted-fair tenant roster, and an online MN join/leave rebalance cell
that must end fsck-clean (a dirty fsck exits nonzero).  ``--rows-out``
writes its deterministic digest for bit-identity checks.

Scale knobs: ``--keys`` (dataset size), ``--ops`` (timed operations per
run), ``--workers``; environment variables REPRO_BENCH_KEYS /
REPRO_BENCH_OPS / REPRO_BENCH_WORKERS set the defaults.

Perf knobs: ``--parallel N`` fans grid cells over N forked processes
(rows stay bit-identical to a serial run); ``--perf-out BENCH_2.json``
writes host-side perf per cell; ``--compare baseline.json`` exits
nonzero on a wall-clock regression past 20 %.

Chaos mode: ``--chaos`` attaches the deterministic
``FaultPlan.chaos(--chaos-seed)`` fault mix to every fig4/fig5 cell and
reports goodput (successful ops/s) next to raw throughput.
``--chaos-crashes`` additionally mixes in crash scenarios - ``crash_cn``
kills a client generator mid-op (its orphaned locks are reclaimed by the
attached ``repro.recover`` manager's lease protocol) and ``crash_mn``
blanks a memory node (ops against it fail fast with ``MNUnavailable``) -
and reports how many workers died per cell.  ``--workloads A,C`` and
``--systems Sphinx,ART`` narrow the grid.

Profile mode: ``--profile`` attaches a ``repro.obs`` tracer to every
fig4/fig5 cell and prints the per-op round-trip/bytes/retry breakdown;
``--trace-out trace.json`` additionally writes the Chrome
``trace_event`` JSON (load it in chrome://tracing or Perfetto), and
``--trace-jsonl trace.jsonl`` the compact JSONL span log.  Attached
tracing never changes simulated results - see DESIGN.md §8.
"""

from __future__ import annotations

import argparse
import json
import sys

from .figures import (
    ablation_cache_budget,
    ablation_depth_scaling,
    ablation_distribution_skew,
    ablation_filter_cache,
    ablation_fingerprint_bits,
    ablation_hotness,
    ablation_locator_budget,
    ablation_scan_batching,
    FIG4_WORKLOADS,
    fig4_ycsb,
    fig5_scalability,
    fig6_memory,
    render_chaos,
    render_fig4,
    render_fig5,
    render_fig6,
    render_rtt_histograms,
    rtt_histograms,
)
from .harness import DEFAULT_KEYS, DEFAULT_OPS, DEFAULT_PARALLEL, \
    DEFAULT_WORKERS, EXTRA_SYSTEMS, SYSTEMS
from .perftrack import TRACKER, compare, load_report
from .rackfig import rack_family, render_rack
from .reporting import banner, format_table


def _rows_table(rows) -> str:
    if not rows:
        return "(no rows)"
    headers = list(rows[0].keys())
    return format_table(headers, [[row[h] for h in headers] for row in rows])


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro.bench", description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter)
    parser.add_argument("figure", choices=["fig4", "fig5", "fig6",
                                           "ablations", "rack", "all"])
    parser.add_argument("--dataset", choices=["u64", "email", "both"],
                        default="both")
    parser.add_argument("--keys", type=int, default=DEFAULT_KEYS)
    parser.add_argument("--ops", type=int, default=DEFAULT_OPS)
    parser.add_argument("--workers", type=int, default=DEFAULT_WORKERS)
    parser.add_argument("--parallel", type=int, default=DEFAULT_PARALLEL,
                        help="fan grid cells over N forked processes "
                             "(0 = serial; results are bit-identical)")
    parser.add_argument("--perf-out", metavar="PATH",
                        help="write host-side perf per cell (BENCH_2.json)")
    parser.add_argument("--compare", metavar="BASELINE",
                        help="diff perf against a baseline BENCH_2.json; "
                             "exit 1 on >20%% total wall regression")
    parser.add_argument("--chaos", action="store_true",
                        help="attach FaultPlan.chaos(--chaos-seed) to every "
                             "fig4/fig5 cell and report goodput")
    parser.add_argument("--chaos-seed", type=int, default=42,
                        help="seed of the chaos fault plan (default 42)")
    parser.add_argument("--chaos-crashes", action="store_true",
                        help="with --chaos: mix in crash_cn/crash_mn "
                             "scenarios, attach the recovery manager and "
                             "report crashed workers per cell")
    parser.add_argument("--profile", action="store_true",
                        help="attach a repro.obs tracer to every fig4/fig5 "
                             "cell and print the per-op breakdown")
    parser.add_argument("--trace-out", metavar="PATH",
                        help="with --profile: write the Chrome trace_event "
                             "JSON (chrome://tracing / Perfetto)")
    parser.add_argument("--trace-jsonl", metavar="PATH",
                        help="with --profile: write the compact JSONL "
                             "span log")
    parser.add_argument("--workloads", metavar="LIST",
                        help="comma-separated fig4 workload subset "
                             "(e.g. A,C; default LOAD,A-E)")
    parser.add_argument("--systems", metavar="LIST",
                        help="comma-separated system subset "
                             "(e.g. Sphinx,ART; default all four)")
    rack_group = parser.add_argument_group(
        "rack", "multi-tenant serving-grid family (figure 'rack'; "
                "BENCH_RACK baseline; not part of 'all')")
    rack_group.add_argument("--rack-cns", type=int, default=8,
                            help="compute nodes (default 8)")
    rack_group.add_argument("--rack-mns", type=int, default=8,
                            help="memory nodes (default 8)")
    rack_group.add_argument("--rack-group-size", type=int, default=2,
                            help="MNs per index group (default 2)")
    rack_group.add_argument("--rack-shards", type=int, default=64,
                            help="key-space shards (default 64)")
    rack_group.add_argument("--clients", type=int, default=64,
                            help="closed-loop client generators (default 64)")
    rack_group.add_argument("--tenants", type=int, default=16,
                            help="tenant roster size (default 16)")
    rack_group.add_argument("--rack-seed", type=int, default=0,
                            help="workload seed of the rack cells")
    rack_group.add_argument("--no-rebalance", action="store_true",
                            help="skip the online MN join/leave cell")
    rack_group.add_argument("--replicas", type=int, default=0,
                            help="shard replication degree K; K > 0 adds "
                                 "the 'replicated' cell (default 0)")
    rack_group.add_argument("--crash-mn-verb", type=int, metavar="N",
                            help="with --replicas: crash one MN after N "
                                 "injector verbs inside the replicated "
                                 "cell, forcing an online failover")
    rack_group.add_argument("--rows-out", metavar="PATH",
                            help="write the rack digest JSON (aggregate + "
                                 "per-tenant rows + topology log + fsck); "
                                 "byte-identical across same-seed runs")
    args = parser.parse_args(argv)
    datasets = ["u64", "email"] if args.dataset == "both" else [args.dataset]
    workloads = tuple(args.workloads.split(",")) if args.workloads \
        else FIG4_WORKLOADS
    for name in workloads:
        if name not in FIG4_WORKLOADS:
            parser.error(f"unknown workload {name!r}")
    systems = tuple(args.systems.split(",")) if args.systems else SYSTEMS
    for name in systems:
        if name not in SYSTEMS + EXTRA_SYSTEMS:
            parser.error(f"unknown system {name!r}")
    chaos_seed = args.chaos_seed if args.chaos else None
    if args.chaos_crashes and not args.chaos:
        parser.error("--chaos-crashes requires --chaos")
    if (args.trace_out or args.trace_jsonl) and not args.profile:
        parser.error("--trace-out/--trace-jsonl require --profile")
    if args.crash_mn_verb is not None and args.replicas < 1:
        parser.error("--crash-mn-verb requires --replicas >= 1")
    profiles = {}
    traces = {}

    if args.figure in ("fig4", "all"):
        for dataset in datasets:
            fig4 = fig4_ycsb(dataset, num_keys=args.keys,
                             ops=args.ops, workers=args.workers,
                             systems=systems, parallel=args.parallel,
                             workloads=workloads, chaos_seed=chaos_seed,
                             chaos_crashes=args.chaos_crashes,
                             profile=args.profile)
            if args.chaos:
                print(render_chaos(fig4, args.chaos_seed))
            else:
                print(render_fig4(fig4))
            for label, prof in fig4.profiles.items():
                profiles[f"{dataset}:{label}"] = prof
                traces[f"{dataset}:{label}"] = fig4.traces[label]
    if args.figure in ("fig5", "all"):
        for dataset in datasets:
            fig5 = fig5_scalability(dataset, num_keys=args.keys,
                                    ops=args.ops, systems=systems,
                                    parallel=args.parallel,
                                    chaos_seed=chaos_seed,
                                    chaos_crashes=args.chaos_crashes,
                                    profile=args.profile)
            print(render_fig5(fig5))
            for label, prof in fig5.profiles.items():
                profiles[f"{dataset}:{label}"] = prof
                traces[f"{dataset}:{label}"] = fig5.traces[label]
    rack_fsck_failed = False
    if args.figure == "rack":
        figure = rack_family(num_cns=args.rack_cns, num_mns=args.rack_mns,
                             group_size=args.rack_group_size,
                             num_shards=args.rack_shards,
                             clients=args.clients, tenants=args.tenants,
                             num_keys=args.keys, ops=args.ops,
                             seed=args.rack_seed,
                             rebalance=not args.no_rebalance,
                             chaos_seed=chaos_seed,
                             replicas=args.replicas,
                             crash_mn_verb=args.crash_mn_verb)
        print(render_rack(figure))
        if args.rows_out:
            with open(args.rows_out, "w") as fh:
                json.dump(figure.digest(), fh, indent=2, sort_keys=True)
                fh.write("\n")
            print(f"wrote {args.rows_out}: rack digest "
                  f"({len(figure.rows)} cells)")
        if not figure.fsck_clean:
            print(f"RACK FSCK FAILED: exits {figure.fsck_exits}")
            rack_fsck_failed = True
    if args.figure in ("fig6", "all"):
        print(render_fig6(fig6_memory(num_keys=args.keys)))
    if args.figure in ("ablations", "all"):
        print(banner("Ablation - succinct filter cache on/off (YCSB-C)"))
        print(_rows_table(ablation_filter_cache(num_keys=args.keys,
                                                ops=args.ops,
                                                workers=args.workers)))
        print(banner("Ablation - scan doorbell batching (YCSB-E)"))
        print(_rows_table(ablation_scan_batching(num_keys=args.keys)))
        print(banner("Ablation - hotness-bit second chance vs random"))
        print(_rows_table(ablation_hotness()))
        print(banner("Ablation - fingerprint width vs false positives"))
        print(_rows_table(ablation_fingerprint_bits()))
        print(banner("Ablation - round trips vs dataset size (tree depth)"))
        print(_rows_table(ablation_depth_scaling()))
        print(banner("Ablation - CN cache budget sensitivity (YCSB-C)"))
        print(_rows_table(ablation_cache_budget(num_keys=args.keys,
                                                ops=args.ops,
                                                workers=args.workers)))
        print(banner("Ablation - request skew robustness (YCSB-C)"))
        print(_rows_table(ablation_distribution_skew(num_keys=args.keys,
                                                     ops=args.ops,
                                                     workers=args.workers)))
        print(banner("Ablation - leaf-locator vs filter-cache budget "
                     "crossover (YCSB-C)"))
        print(_rows_table(ablation_locator_budget(num_keys=args.keys,
                                                  ops=args.ops,
                                                  workers=args.workers)))
    if args.profile and profiles:
        from ..obs import render_profile, write_chrome_trace
        print(banner("Profile - per-op round-trip/bytes/retry breakdown"))
        print(render_profile(profiles))
        print(render_rtt_histograms(rtt_histograms(traces)))
        if args.trace_out:
            labels = list(traces)
            write_chrome_trace([traces[label] for label in labels],
                               args.trace_out, labels)
            print(f"wrote {args.trace_out}: Chrome trace_event JSON "
                  f"({len(labels)} cells; open in chrome://tracing)")
        if args.trace_jsonl:
            from ..obs import iter_jsonl
            with open(args.trace_jsonl, "w") as fh:
                for label, tracer in traces.items():
                    for line in iter_jsonl(tracer, cell=label):
                        fh.write(line)
                        fh.write("\n")
            print(f"wrote {args.trace_jsonl}: JSONL span log "
                  f"({len(traces)} cells)")
    if args.perf_out:
        report = TRACKER.write(args.perf_out)
        print(f"wrote {args.perf_out}: {len(report['cells'])} cells, "
              f"total wall {report['total_wall_s']:.2f}s")
    if args.compare:
        messages, failed = compare(TRACKER.report(),
                                   load_report(args.compare))
        for message in messages:
            print(message)
        if failed:
            print("PERF REGRESSION: total wall time over threshold")
            return 1
    if rack_fsck_failed:
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
