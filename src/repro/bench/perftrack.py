"""Host-side benchmark performance tracking and regression flagging.

The simulator reports *simulated* throughput; this module tracks how fast
the simulation itself runs on the host.  Every grid cell executed through
:func:`repro.bench.harness.run_grid` contributes one record (wall-clock
seconds, engine events processed, events per wall second, simulated
throughput), and the session report is written as ``BENCH_2.json``::

    {
      "schema": "BENCH_2",
      "total_wall_s": 41.2,
      "cells": [
        {"system": "Sphinx", "dataset": "u64", "workload": "A", ...},
        ...
      ]
    }

``compare`` (also the module CLI) diffs a report against a checked-in
baseline and flags wall-clock regressions, so a perf-sensitive change
shows up in CI rather than as a mysteriously slower benchmark suite::

    python -m repro.bench.perftrack BENCH_2.json --compare baseline.json

Per-cell regressions are printed as warnings; the exit status only turns
nonzero when the *total* wall time regresses past the threshold (20 % by
default), which keeps single-cell scheduling noise from failing a build.
``--max-cell-regress`` arms a second, per-cell gate for suites whose
cells are individually meaningful (the engine microbenchmarks): any one
cell slowing past that ratio also fails the check.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Dict, List, Optional, Tuple

SCHEMA = "BENCH_2"
DEFAULT_THRESHOLD = 0.20

_CELL_ID_FIELDS = ("system", "dataset", "workload", "workers", "ops")


class PerfTracker:
    """Accumulates per-cell host perf records for one process/session."""

    def __init__(self) -> None:
        self.cells: List[dict] = []

    def add(self, result) -> None:
        """Record one RunResult whose ``perf`` dict the harness filled."""
        if result is None or getattr(result, "perf", None) is None:
            return
        record = {
            "system": result.system,
            "workload": result.workload,
            "dataset": result.dataset,
            "workers": result.workers,
            "ops": result.ops,
        }
        record.update(result.perf)
        self.cells.append(record)

    def clear(self) -> None:
        self.cells.clear()

    def report(self) -> dict:
        return {
            "schema": SCHEMA,
            "total_wall_s": round(sum(c["wall_s"] for c in self.cells), 3),
            "total_events": sum(c["events"] for c in self.cells),
            "cells": list(self.cells),
        }

    def write(self, path: str) -> dict:
        report = self.report()
        with open(path, "w") as fh:
            json.dump(report, fh, indent=2, sort_keys=True)
            fh.write("\n")
        return report


#: Process-global tracker fed by ``run_grid``; figure CLIs and the
#: benchmark suite's session hook write it out as BENCH_2.json.
TRACKER = PerfTracker()


def _cell_id(cell: dict) -> Tuple:
    return tuple(cell.get(f) for f in _CELL_ID_FIELDS)


def load_report(path: str) -> dict:
    with open(path) as fh:
        return json.load(fh)


def compare(current: dict, baseline: dict,
            threshold: float = DEFAULT_THRESHOLD,
            max_cell_regress: Optional[float] = None
            ) -> Tuple[List[str], bool]:
    """Diff two BENCH reports.

    Returns ``(messages, failed)``: one message per notable per-cell or
    total delta.  ``failed`` is True when total wall time regressed by
    more than ``threshold`` (relative), or - when ``max_cell_regress``
    is given - when any single cell's wall time grew past that ratio
    (e.g. ``1.5`` fails a cell that got 50% slower).
    """
    messages: List[str] = []
    failed = False
    base_cells: Dict[Tuple, dict] = {
        _cell_id(c): c for c in baseline.get("cells", ())}
    for cell in current.get("cells", ()):
        base = base_cells.get(_cell_id(cell))
        if base is None or base.get("wall_s", 0) <= 0:
            continue
        ratio = cell["wall_s"] / base["wall_s"]
        if ratio > 1 + threshold:
            messages.append(
                f"cell {cell['system']}/{cell['dataset']}/{cell['workload']}"
                f" wall {base['wall_s']:.2f}s -> {cell['wall_s']:.2f}s"
                f" ({ratio:.2f}x)")
        if max_cell_regress is not None and ratio > max_cell_regress:
            messages.append(
                f"cell {cell['system']}/{cell['dataset']}/{cell['workload']}"
                f" FAILED per-cell gate ({ratio:.2f}x > "
                f"{max_cell_regress:.2f}x)")
            failed = True
    base_total = baseline.get("total_wall_s", 0)
    cur_total = current.get("total_wall_s", 0)
    if base_total > 0:
        ratio = cur_total / base_total
        messages.append(
            f"total wall {base_total:.2f}s -> {cur_total:.2f}s ({ratio:.2f}x,"
            f" threshold {1 + threshold:.2f}x)")
        failed = failed or ratio > 1 + threshold
    return messages, failed


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro.bench.perftrack",
        description="Summarize or diff BENCH_2.json perf reports.")
    parser.add_argument("report", help="current BENCH_2.json")
    parser.add_argument("--compare", metavar="BASELINE",
                        help="baseline BENCH_2.json to diff against")
    parser.add_argument("--threshold", type=float,
                        default=DEFAULT_THRESHOLD,
                        help="relative wall-clock regression tolerance "
                             "(default 0.20 = 20%%)")
    parser.add_argument("--max-cell-regress", type=float, metavar="RATIO",
                        help="also fail when any single cell's wall time "
                             "grows past RATIO x baseline (e.g. 1.5); "
                             "default: only the total gates")
    args = parser.parse_args(argv)
    current = load_report(args.report)
    cells = current.get("cells", ())
    print(f"{args.report}: {len(cells)} cells, "
          f"total wall {current.get('total_wall_s', 0):.2f}s, "
          f"{current.get('total_events', 0)} events")
    print(f"{'cell':<40} {'wall_s':>8} {'events':>10} {'events/s':>12}")
    for cell in cells:
        name = "/".join(str(cell.get(f)) for f in _CELL_ID_FIELDS)
        wall = cell.get("wall_s", 0)
        events = cell.get("events", 0)
        rate = cell.get("events_per_s",
                        round(events / wall) if wall else 0)
        print(f"{name:<40} {wall:>8.3f} {events:>10} {rate:>12,}")
    if not args.compare:
        return 0
    messages, failed = compare(current, load_report(args.compare),
                               args.threshold, args.max_cell_regress)
    for message in messages:
        print(message)
    if failed:
        print("PERF REGRESSION: total wall time over threshold")
        return 1
    print("perf check OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
