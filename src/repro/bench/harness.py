"""Experiment harness: build clusters/systems and execute the paper's runs.

Scaling rule (see DESIGN.md): the paper loads 60 M keys and gives SMART/
Sphinx a 20 MB CN cache (SMART+C: 200 MB).  We scale the dataset down and
scale every CN-side budget by the same factor, preserving the
cache-coverage ratios that drive the results:

    budget = 20 MB * (keys / 60 M)          (Sphinx filter, SMART cache)
    budget_C = 10x budget                   (SMART+C)

``REPRO_BENCH_KEYS`` / ``REPRO_BENCH_OPS`` environment variables override
the default dataset / per-run operation counts for quicker smoke runs or
bigger, higher-fidelity runs.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import Optional

from ..baselines import ArtDmIndex, SmartConfig, SmartIndex
from ..core import SphinxConfig, SphinxIndex
from ..dm import Cluster, ClusterConfig
from ..errors import ConfigError
from ..ycsb import Dataset, RunResult, bulk_load, make_dataset, run_workload, workload

PAPER_KEYS = 60_000_000
PAPER_CACHE_BYTES = 20 << 20
SMART_C_FACTOR = 10

DEFAULT_KEYS = int(os.environ.get("REPRO_BENCH_KEYS", 60_000))
DEFAULT_OPS = int(os.environ.get("REPRO_BENCH_OPS", 4_800))
DEFAULT_WORKERS = int(os.environ.get("REPRO_BENCH_WORKERS", 192))

SYSTEMS = ("ART", "SMART", "SMART+C", "Sphinx")


def scaled_cache_bytes(num_keys: int, factor: int = 1) -> int:
    """The paper's 20 MB budget scaled to our dataset size."""
    return max(4_096, int(PAPER_CACHE_BYTES * num_keys / PAPER_KEYS) * factor)


@dataclass
class SystemSetup:
    """A loaded system ready for timed runs."""

    name: str
    cluster: Cluster
    index: object
    dataset: Dataset

    def cn_cache_bytes(self) -> int:
        return sum(self.index.client(cn).cn_cache_bytes()
                   if hasattr(self.index.client(cn), "cn_cache_bytes") else 0
                   for cn in range(self.cluster.config.num_cns))


def make_index(name: str, cluster: Cluster, num_keys: int,
               use_filter: bool = True):
    """Instantiate one of the paper's four systems with scaled budgets."""
    budget = scaled_cache_bytes(num_keys)
    if name == "ART":
        return ArtDmIndex(cluster)
    if name == "SMART":
        return SmartIndex(cluster, SmartConfig(cache_budget_bytes=budget))
    if name == "SMART+C":
        return SmartIndex(cluster, SmartConfig(
            cache_budget_bytes=budget * SMART_C_FACTOR))
    if name == "Sphinx":
        return SphinxIndex(cluster, SphinxConfig(
            filter_budget_bytes=budget, use_filter=use_filter))
    if name == "Sphinx-NoFilter":
        return SphinxIndex(cluster, SphinxConfig(
            filter_budget_bytes=budget, use_filter=False))
    raise ConfigError(f"unknown system {name!r}")


def build_setup(system: str, dataset: Dataset,
                mn_capacity: int = 1 << 30) -> SystemSetup:
    """Create a cluster, instantiate the system and bulk-load the keys."""
    cluster = Cluster(ClusterConfig(mn_capacity_bytes=mn_capacity))
    index = make_index(system, cluster, dataset.size)
    bulk_load(cluster, index, dataset)
    return SystemSetup(system, cluster, index, dataset)


def timed_run(setup: SystemSetup, workload_name: str, *,
              workers: int = DEFAULT_WORKERS, ops: int = DEFAULT_OPS,
              warmup_ops_per_cn: Optional[int] = None,
              seed: int = 0) -> RunResult:
    """One timed YCSB run against a loaded system."""
    spec = workload(workload_name)
    if warmup_ops_per_cn is None:
        warmup_ops_per_cn = min(2_000, setup.dataset.size // 4)
    return run_workload(setup.cluster, setup.index, spec, setup.dataset,
                        system=setup.name, workers=workers, ops=ops,
                        warmup_ops_per_cn=warmup_ops_per_cn, seed=seed)


def load_dataset(name: str, num_keys: int = DEFAULT_KEYS,
                 insert_fraction: float = 0.3, seed: int = 1) -> Dataset:
    """Dataset plus an insert pool big enough for LOAD/E runs."""
    return make_dataset(name, num_keys, seed=seed,
                        insert_pool=int(num_keys * insert_fraction))
