"""Experiment harness: build clusters/systems and execute the paper's runs.

Scaling rule (see DESIGN.md): the paper loads 60 M keys and gives SMART/
Sphinx a 20 MB CN cache (SMART+C: 200 MB).  We scale the dataset down and
scale every CN-side budget by the same factor, preserving the
cache-coverage ratios that drive the results:

    budget = 20 MB * (keys / 60 M)          (Sphinx filter, SMART cache)
    budget_C = 10x budget                   (SMART+C)

``REPRO_BENCH_KEYS`` / ``REPRO_BENCH_OPS`` / ``REPRO_BENCH_WORKERS``
environment variables override the default dataset / per-run operation /
worker counts for quicker smoke runs or bigger, higher-fidelity runs.

Grid execution model
--------------------
A figure is a grid of independent **cells** (system x dataset x workload
x scale), each described by a :class:`CellSpec`.  ``run_cell`` makes each
cell a pure function of its spec:

* the bulk-loaded system is built once per (system, dataset, scale) and
  cached as a canonical snapshot (loading dominated the old per-cell
  cost);
* cache warm-up runs once per (snapshot, distribution, warm size, seed)
  on a private copy, also cached;
* the timed run executes against a ``copy.deepcopy`` of the warmed
  snapshot, so no cell observes another cell's mutations.

Because cells are pure, ``run_grid`` can fan them over a fork-based
process pool (``--parallel`` / ``REPRO_BENCH_PARALLEL``) and the rows are
bit-identical to a serial run.
"""

from __future__ import annotations

import copy
import gc
import multiprocessing
import os
import time
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Tuple

from ..baselines import ArtDmIndex, OutbackIndex, SmartConfig, SmartIndex
from ..core import SphinxConfig, SphinxIndex
from ..dm import Cluster, ClusterConfig
from ..dm.network import vector_enabled
from ..errors import ConfigError
from ..ycsb import Dataset, RunResult, bulk_load, make_dataset, run_workload, \
    warm_clients, workload

PAPER_KEYS = 60_000_000
PAPER_CACHE_BYTES = 20 << 20
SMART_C_FACTOR = 10


def _env_int(name: str, default: int, minimum: int = 1) -> int:
    """An integer environment override, validated.

    A malformed or out-of-range value raises :class:`ConfigError` naming
    the offending variable instead of surfacing a bare ``ValueError``
    from ``int()`` deep inside the first benchmark run.
    """
    raw = os.environ.get(name)
    if raw is None or raw.strip() == "":
        return default
    try:
        value = int(raw, 0)
    except ValueError:
        raise ConfigError(
            f"{name} must be an integer, got {raw!r}") from None
    if value < minimum:
        raise ConfigError(f"{name} must be >= {minimum}, got {value}")
    return value


DEFAULT_KEYS = _env_int("REPRO_BENCH_KEYS", 60_000)
DEFAULT_OPS = _env_int("REPRO_BENCH_OPS", 4_800)
DEFAULT_WORKERS = _env_int("REPRO_BENCH_WORKERS", 192)
# 0 = serial; N > 1 = fan grid cells over N forked worker processes.
DEFAULT_PARALLEL = _env_int("REPRO_BENCH_PARALLEL", 0, minimum=0)

SYSTEMS = ("ART", "SMART", "SMART+C", "Sphinx")

# Opt-in systems: valid in --systems / make_index but outside the default
# grid, so BENCH_2 baselines keep comparing the paper's four systems.
# "Sphinx+Loc" is Sphinx with the CN-side leaf-locator tier grafted on
# (core.leaf_locator); "Outback" is the MPH-directory baseline
# (baselines.outback); "Sphinx-NoFilter" is the filter-cache ablation.
EXTRA_SYSTEMS = ("Sphinx-NoFilter", "Sphinx+Loc", "Outback")


def scaled_cache_bytes(num_keys: int, factor: int = 1) -> int:
    """The paper's 20 MB budget scaled to our dataset size."""
    return max(4_096, int(PAPER_CACHE_BYTES * num_keys / PAPER_KEYS) * factor)


@dataclass
class SystemSetup:
    """A loaded system ready for timed runs."""

    name: str
    cluster: Cluster
    index: object
    dataset: Dataset

    def cn_cache_bytes(self) -> int:
        return sum(self.index.client(cn).cn_cache_bytes()
                   if hasattr(self.index.client(cn), "cn_cache_bytes") else 0
                   for cn in range(self.cluster.config.num_cns))


def make_index(name: str, cluster: Cluster, num_keys: int,
               use_filter: bool = True):
    """Instantiate one of the paper's systems (or an EXTRA_SYSTEMS
    variant) with paper-scaled CN budgets."""
    budget = scaled_cache_bytes(num_keys)
    if name == "ART":
        return ArtDmIndex(cluster)
    if name == "SMART":
        return SmartIndex(cluster, SmartConfig(cache_budget_bytes=budget))
    if name == "SMART+C":
        return SmartIndex(cluster, SmartConfig(
            cache_budget_bytes=budget * SMART_C_FACTOR))
    if name == "Sphinx":
        return SphinxIndex(cluster, SphinxConfig(
            filter_budget_bytes=budget, use_filter=use_filter))
    if name == "Sphinx-NoFilter":
        return SphinxIndex(cluster, SphinxConfig(
            filter_budget_bytes=budget, use_filter=False))
    if name == "Sphinx+Loc":
        # The locator tier rides on top of the normal filter cache and
        # gets the same paper-scaled CN budget (its entries are 16 B, so
        # at equal budget it covers a large slice of the hot key set).
        return SphinxIndex(cluster, SphinxConfig(
            filter_budget_bytes=budget, use_filter=use_filter,
            use_locator=True, locator_budget_bytes=budget))
    if name == "Outback":
        # CN budget is implicit: the MPH directory covers every loaded
        # key at ~12 B/key and rebuilds are seeded from the key set.
        return OutbackIndex(cluster)
    raise ConfigError(f"unknown system {name!r}")


def build_setup(system: str, dataset: Dataset,
                mn_capacity: int = 1 << 30) -> SystemSetup:
    """Create a cluster, instantiate the system and bulk-load the keys."""
    cluster = Cluster(ClusterConfig(mn_capacity_bytes=mn_capacity))
    index = make_index(system, cluster, dataset.size)
    bulk_load(cluster, index, dataset)
    return SystemSetup(system, cluster, index, dataset)


def timed_run(setup: SystemSetup, workload_name: str, *,
              workers: int = DEFAULT_WORKERS, ops: int = DEFAULT_OPS,
              warmup_ops_per_cn: Optional[int] = None,
              seed: int = 0) -> RunResult:
    """One timed YCSB run against a loaded system."""
    spec = workload(workload_name)
    if warmup_ops_per_cn is None:
        warmup_ops_per_cn = min(2_000, setup.dataset.size // 4)
    return run_workload(setup.cluster, setup.index, spec, setup.dataset,
                        system=setup.name, workers=workers, ops=ops,
                        warmup_ops_per_cn=warmup_ops_per_cn, seed=seed)


def load_dataset(name: str, num_keys: int = DEFAULT_KEYS,
                 insert_fraction: float = 0.3, seed: int = 1) -> Dataset:
    """Dataset plus an insert pool big enough for LOAD/E runs."""
    return make_dataset(name, num_keys, seed=seed,
                        insert_pool=int(num_keys * insert_fraction))


# ---------------------------------------------------------------------------
# Grid cells: snapshot-cached, deterministic, fan-out-able benchmark units
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class CellSpec:
    """One benchmark grid cell; ``run_cell`` is a pure function of this."""

    system: str
    dataset: str
    workload: str
    num_keys: int = 60_000
    ops: int = 4_800
    workers: int = 192
    seed: int = 0
    insert_fraction: float = 0.3
    warmup_ops_per_cn: Optional[int] = None
    chaos_seed: Optional[int] = None
    """When set, a ``FaultPlan.chaos(chaos_seed)`` is attached to the
    cell's private cluster copy right before the timed run.  Loading and
    warming stay fault-free (and snapshot-shareable with non-chaos
    cells): the seed is deliberately absent from load_key()/warm_key()."""

    chaos_crashes: bool = False
    """With ``chaos_seed``: extend the chaos mix with crash scenarios
    (``crash_cn`` mid-op client kills and a possible ``crash_mn``).  A
    :class:`repro.recover.RecoveryManager` is attached alongside so the
    run exercises lease reclamation; ``result.crashed_workers`` reports
    how many workers died."""

    profile: bool = False
    """When set, a ``repro.obs.Tracer`` is attached to the cell's private
    cluster copy right before the timed run; ``result.profile`` and
    ``result.trace`` come back filled.  Like ``chaos_seed``, the flag is
    deliberately absent from load_key()/warm_key() - tracing never
    changes what the cell simulates, only what it records."""

    def resolved_warmup(self) -> int:
        if self.warmup_ops_per_cn is not None:
            return self.warmup_ops_per_cn
        return min(2_000, self.num_keys // 4)

    def load_key(self) -> Tuple:
        """Cache key of the bulk-loaded canonical snapshot."""
        return (self.system, self.dataset, self.num_keys,
                self.insert_fraction)

    def warm_key(self) -> Tuple:
        """Cache key of the warmed canonical snapshot.

        Warm-up traffic depends on the request distribution (YCSB-D warms
        under "latest", the rest under zipfian/uniform), the warm size and
        the run seed - not on the workload's operation mix.
        """
        spec = workload(self.workload)
        return self.load_key() + (spec.distribution, self.resolved_warmup(),
                                  self.seed)


# Canonical snapshots, keyed per CellSpec.load_key()/warm_key().  Both hold
# systems that are *never run against*: cells deepcopy them, so every cell
# starts from identical state no matter how many ran before it (that is
# what makes serial and parallel grids bit-identical).  Process-level by
# design - a figure reuses one bulk load across its whole workload row.
#
# Bounded: a full grid visits 8+ (system, dataset) groups, and keeping
# every group's snapshots alive makes each gen-2 GC pass walk tens of
# millions of objects, visibly slowing the *later* groups.  Grids run
# group by group, so a small LRU is enough; eviction only ever costs a
# re-load, never changes a result (run_cell is pure in its CellSpec).
_MAX_LOAD_GROUPS = 2
_loaded_snapshots: Dict[Tuple, SystemSetup] = {}
_warmed_snapshots: Dict[Tuple, SystemSetup] = {}


def clear_setup_caches() -> None:
    """Drop canonical snapshots (tests; also frees their MN memory)."""
    _loaded_snapshots.clear()
    _warmed_snapshots.clear()


def _evict_oldest_group() -> None:
    oldest = next(iter(_loaded_snapshots))
    del _loaded_snapshots[oldest]
    for key in [k for k in _warmed_snapshots if k[:len(oldest)] == oldest]:
        del _warmed_snapshots[key]
    gc.collect()  # snapshot graphs are cyclic (engine <-> processes)


def _loaded_setup(cell: CellSpec) -> SystemSetup:
    key = cell.load_key()
    setup = _loaded_snapshots.get(key)
    if setup is None:
        while len(_loaded_snapshots) >= _MAX_LOAD_GROUPS:
            _evict_oldest_group()
        dataset = load_dataset(cell.dataset, cell.num_keys,
                               insert_fraction=cell.insert_fraction)
        setup = build_setup(cell.system, dataset)
        _loaded_snapshots[key] = setup
    elif next(reversed(_loaded_snapshots)) is not setup:
        del _loaded_snapshots[key]          # LRU refresh: move to the end
        _loaded_snapshots[key] = setup
    return setup


def _warmed_setup(cell: CellSpec) -> SystemSetup:
    key = cell.warm_key()
    setup = _warmed_snapshots.get(key)
    if setup is None:
        setup = copy.deepcopy(_loaded_setup(cell))
        warm_clients(setup.cluster, setup.index, workload(cell.workload),
                     setup.dataset, cell.resolved_warmup(), cell.seed)
        _warmed_snapshots[key] = setup
    return setup


def run_cell(cell: CellSpec) -> RunResult:
    """Execute one grid cell from a pristine loaded-and-warmed snapshot.

    Returns the :class:`RunResult` with ``result.perf`` filled in: host
    wall seconds (``wall_s`` includes snapshot restore and any
    cache-miss build; ``run_wall_s`` is the measured phase alone),
    simulation events processed, events per *run* wall second (the
    engine dispatch-rate metric - restore time would pollute it), and
    which engine mode produced the numbers (``fast``/``fast-novector``/
    ``slow``), so BENCH_2 wall times are never silently compared across
    dispatch paths.
    """
    wall_start = time.perf_counter()
    live = copy.deepcopy(_warmed_setup(cell))
    if cell.chaos_seed is not None:
        from ..fault import FaultPlan
        live.cluster.attach_faults(
            FaultPlan.chaos(cell.chaos_seed, crashes=cell.chaos_crashes))
        if cell.chaos_crashes:
            # Crash cells also run the recovery stack: leases are stamped
            # on every lock CAS and survivors can reclaim orphans.
            live.cluster.attach_recovery()
    tracer = None
    if cell.profile:
        tracer = live.cluster.attach_tracer()
    engine = live.cluster.engine
    events_before = engine.events_processed
    run_start = time.perf_counter()
    result = run_workload(live.cluster, live.index, workload(cell.workload),
                          live.dataset, system=cell.system,
                          workers=cell.workers, ops=cell.ops,
                          warmup_ops_per_cn=0, seed=cell.seed)
    wall_end = time.perf_counter()
    wall_s = wall_end - wall_start
    run_wall_s = wall_end - run_start
    events = engine.events_processed - events_before
    if engine._slow:
        mode = "slow"
    else:
        mode = "fast" if vector_enabled() else "fast-novector"
    result.perf = {
        "wall_s": round(wall_s, 4),
        "run_wall_s": round(run_wall_s, 4),
        "events": events,
        "events_per_s": round(events / run_wall_s) if run_wall_s > 0 else 0,
        "engine_mode": mode,
        "sim_ns": result.sim_ns,
        "throughput_mops": round(result.throughput_mops, 4),
    }
    if tracer is not None:
        from ..obs import profile_summary
        tracer.finish()  # drops live refs: results stay pool-picklable
        result.profile = profile_summary(tracer)
        result.trace = tracer
    return result


def _run_cell_batch(batch: List[CellSpec]) -> List[RunResult]:
    """Pool worker: run one snapshot group's cells (shares its bulk load)."""
    return [run_cell(cell) for cell in batch]


def run_grid(cells: Iterable[CellSpec],
             parallel: Optional[int] = None) -> List[RunResult]:
    """Run a grid of cells, serially or over a fork-based process pool.

    ``parallel`` defaults to ``REPRO_BENCH_PARALLEL`` (0 = serial).  Cells
    are grouped by loaded-snapshot key so each worker process bulk-loads a
    (system, dataset) once; results come back in input order and are
    bit-identical to a serial run because every cell restores a pristine
    snapshot.  Per-cell host perf lands on ``result.perf`` and is fed to
    :mod:`repro.bench.perftrack` for BENCH reports.
    """
    cells = list(cells)
    if parallel is None:
        parallel = DEFAULT_PARALLEL
    if parallel and parallel > 1 and len(cells) > 1:
        groups: Dict[Tuple, List[int]] = {}
        for i, cell in enumerate(cells):
            groups.setdefault(cell.load_key(), []).append(i)
        index_groups = list(groups.values())
        batches = [[cells[i] for i in idxs] for idxs in index_groups]
        ctx = multiprocessing.get_context("fork")
        with ctx.Pool(processes=min(parallel, len(batches))) as pool:
            batch_results = pool.map(_run_cell_batch, batches)
        results: List[Optional[RunResult]] = [None] * len(cells)
        for idxs, batch in zip(index_groups, batch_results):
            for i, result in zip(idxs, batch):
                results[i] = result
    else:
        # Serial path: cells allocate millions of short-lived simulation
        # objects while the cached snapshots pin tens of millions of
        # long-lived ones, so automatic gen-2 collections trigger often
        # and walk the whole snapshot graph each time.  Collect once per
        # cell instead - same reclamation, a fraction of the passes.
        gc_was_enabled = gc.isenabled()
        gc.disable()
        try:
            results = []
            for cell in cells:
                results.append(run_cell(cell))
                gc.collect()
        finally:
            if gc_was_enabled:
                gc.enable()
    from .perftrack import TRACKER
    for result in results:
        TRACKER.add(result)
    return results
