"""Regeneration of every figure in the paper's evaluation (Sec. V).

Each ``fig*`` function executes the corresponding experiment on the
simulated cluster and returns structured rows; ``render_*`` turns them
into the text tables the benchmark suite prints.  Absolute Mops/s differ
from the paper's hardware, the *shapes* (system ordering, relative
factors, saturation behaviour) are the reproduction target - see
EXPERIMENTS.md for the side-by-side record.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..errors import DataMissing
from .harness import (
    DEFAULT_KEYS,
    DEFAULT_OPS,
    DEFAULT_WORKERS,
    EXTRA_SYSTEMS,
    SYSTEMS,
    CellSpec,
    SystemSetup,
    build_setup,
    load_dataset,
    run_grid,
    scaled_cache_bytes,
    timed_run,
)
from .reporting import banner, format_table, mops, ratio_summary

FIG4_WORKLOADS = ("LOAD", "A", "B", "C", "D", "E")
FIG5_WORKERS = (6, 12, 24, 48, 96, 192)


def _result_row(run, chaos_seed: Optional[int]) -> dict:
    """One grid result as a table row, with the chaos columns appended
    when fault injection was on (shared by every figure grid)."""
    row = run.row()
    if chaos_seed is not None:
        row["goodput_mops"] = round(run.goodput_mops, 4)
        row["failed_ops"] = run.failed_ops
        row["faults_injected"] = sum(run.faults.values())
        row["crashed_workers"] = run.crashed_workers
    return row


# ---------------------------------------------------------------------------
# Fig 4: YCSB throughput
# ---------------------------------------------------------------------------

@dataclass
class Fig4Result:
    dataset: str
    rows: List[dict] = field(default_factory=list)
    # --profile mode: per-cell op breakdowns and the finished tracers
    # (both empty unless the grid ran with profile=True).
    profiles: Dict[str, dict] = field(default_factory=dict)
    traces: Dict[str, object] = field(default_factory=dict)

    def throughput(self, system: str, workload: str) -> float:
        for row in self.rows:
            if row["system"] == system and row["workload"] == workload:
                return row["throughput_mops"]
        raise DataMissing((system, workload))

    def speedups(self, workload: str) -> Dict[str, float]:
        return ratio_summary({
            row["system"]: row["throughput_mops"]
            for row in self.rows if row["workload"] == workload})


def fig4_ycsb(dataset_name: str, num_keys: int = DEFAULT_KEYS,
              ops: int = DEFAULT_OPS, workers: int = DEFAULT_WORKERS,
              systems=SYSTEMS, scan_ops: Optional[int] = None,
              parallel: Optional[int] = None,
              workloads=FIG4_WORKLOADS,
              chaos_seed: Optional[int] = None,
              chaos_crashes: bool = False,
              profile: bool = False) -> Fig4Result:
    """The YCSB throughput grid (paper Fig 4, one dataset).

    Per system: the dataset is bulk-loaded untimed once; every workload
    (LOAD with fresh keys from the insert pool, then A-E) runs against a
    pristine copy of that loaded, cache-warmed state, so each cell is an
    independent measurement and the grid can run in any order or in
    parallel without changing a digit.

    ``chaos_seed`` attaches a :func:`repro.fault.FaultPlan.chaos` plan to
    every cell's private cluster copy; the rows then also carry goodput
    and fault counters (``--chaos`` mode).  ``chaos_crashes`` extends the
    mix with ``crash_cn``/``crash_mn`` scenarios and attaches a
    :class:`repro.recover.RecoveryManager` (``--chaos-crashes`` mode);
    the rows then also report ``crashed_workers``.

    ``profile`` attaches a :class:`repro.obs.Tracer` to every cell;
    ``result.profiles``/``result.traces`` come back keyed by
    ``"system/workload"`` (``--profile`` mode).
    """
    result = Fig4Result(dataset_name)
    if scan_ops is None:
        # A YCSB-E operation is a ~25-50-key scan: one quarter of the
        # point-op count gives a stable estimate at a sane wall time.
        scan_ops = max(workers, ops // 4)
    # One scan is 30-60x the NIC load of a point operation, so a handful
    # of closed-loop scan workers already saturates the fabric for every
    # system and erases the batching contrast the paper measures; run E
    # at a proportionally lower worker count (the pre-saturation regime).
    scan_workers = max(12, workers // 8)
    cells = [
        CellSpec(system=system, dataset=dataset_name,
                 workload=workload_name, num_keys=num_keys,
                 ops=scan_ops if workload_name == "E" else ops,
                 workers=scan_workers if workload_name == "E" else workers,
                 seed=0, chaos_seed=chaos_seed,
                 chaos_crashes=chaos_crashes, profile=profile)
        for system in systems for workload_name in workloads
    ]
    for run in run_grid(cells, parallel):
        result.rows.append(_result_row(run, chaos_seed))
        if run.profile is not None:
            label = f"{run.system}/{run.workload}"
            result.profiles[label] = run.profile
            result.traces[label] = run.trace
    return result


def render_fig4(result: Fig4Result) -> str:
    known = SYSTEMS + EXTRA_SYSTEMS
    systems = [s for s in known
               if any(r["system"] == s for r in result.rows)]
    headers = ["workload"] + [f"{s} (Mops)" for s in systems]
    workloads = [w for w in FIG4_WORKLOADS
                 if any(r["workload"] == w for r in result.rows)]
    rows = []
    for workload_name in workloads:
        row = [workload_name]
        for system in systems:
            row.append(mops(result.throughput(system, workload_name)))
        rows.append(row)
    out = [banner(f"Fig 4 - YCSB throughput, {result.dataset} dataset"),
           format_table(headers, rows)]
    if "Sphinx" in systems:
        for workload_name in workloads:
            out.append(f"Sphinx speedup on {workload_name}: "
                       f"{result.speedups(workload_name)}")
    return "\n".join(out)


def render_chaos(result: Fig4Result, chaos_seed: int) -> str:
    """Goodput-under-faults table for a chaos-mode fig4 grid."""
    headers = ["system", "workload", "Mops", "goodput Mops", "failed",
               "faults", "crashed"]
    rows = [[r["system"], r["workload"], mops(r["throughput_mops"]),
             mops(r["goodput_mops"]), r["failed_ops"], r["faults_injected"],
             r.get("crashed_workers", 0)]
            for r in result.rows]
    out = [banner(f"Chaos - YCSB goodput under FaultPlan.chaos"
                  f"(seed={chaos_seed}), {result.dataset} dataset"),
           format_table(headers, rows)]
    total_ops = sum(r["ops"] for r in result.rows)
    total_failed = sum(r["failed_ops"] for r in result.rows)
    out.append(f"clean-failure rate: {total_failed}/{total_ops} ops "
               f"({100 * total_failed / max(total_ops, 1):.2f}%)")
    return "\n".join(out)


# ---------------------------------------------------------------------------
# Fig 5: scalability (throughput-latency under worker sweep)
# ---------------------------------------------------------------------------

@dataclass
class Fig5Result:
    dataset: str
    rows: List[dict] = field(default_factory=list)
    profiles: Dict[str, dict] = field(default_factory=dict)
    traces: Dict[str, object] = field(default_factory=dict)

    def series(self, system: str) -> List[dict]:
        return [r for r in self.rows if r["system"] == system]

    def peak_throughput(self, system: str) -> float:
        return max(r["throughput_mops"] for r in self.series(system))

    def latency_at_peak(self, system: str) -> float:
        series = self.series(system)
        best = max(series, key=lambda r: r["throughput_mops"])
        return best["avg_latency_us"]


def fig5_scalability(dataset_name: str, num_keys: int = DEFAULT_KEYS,
                     ops: int = DEFAULT_OPS, systems=SYSTEMS,
                     worker_counts=FIG5_WORKERS,
                     parallel: Optional[int] = None,
                     chaos_seed: Optional[int] = None,
                     chaos_crashes: bool = False,
                     profile: bool = False) -> Fig5Result:
    """Throughput-latency curves for YCSB-A (paper Fig 5, one dataset)."""
    result = Fig5Result(dataset_name)
    cells = [
        CellSpec(system=system, dataset=dataset_name, workload="A",
                 num_keys=num_keys, ops=ops, workers=workers, seed=workers,
                 chaos_seed=chaos_seed, chaos_crashes=chaos_crashes,
                 profile=profile)
        for system in systems for workers in worker_counts
    ]
    for run in run_grid(cells, parallel):
        result.rows.append(_result_row(run, chaos_seed))
        if run.profile is not None:
            label = f"{run.system}/{run.workload}x{run.workers}"
            result.profiles[label] = run.profile
            result.traces[label] = run.trace
    return result


def render_fig5(result: Fig5Result) -> str:
    headers = ["system", "workers", "Mops", "avg us", "p99 us", "msgs/op"]
    rows = [[r["system"], r["workers"], mops(r["throughput_mops"]),
             f"{r['avg_latency_us']:.2f}", f"{r['p99_latency_us']:.2f}",
             f"{r['messages_per_op']:.2f}"] for r in result.rows]
    out = [banner(f"Fig 5 - YCSB-A scalability, {result.dataset} dataset"),
           format_table(headers, rows)]
    systems = sorted({r["system"] for r in result.rows})
    peaks = {s: result.peak_throughput(s) for s in systems}
    out.append(f"peak throughput: { {k: round(v, 3) for k, v in peaks.items()} }")
    if "Sphinx" in peaks:
        out.append(f"Sphinx peak speedup: {ratio_summary(peaks)}")
    return "\n".join(out)


# ---------------------------------------------------------------------------
# Fig 6: MN-side space consumption
# ---------------------------------------------------------------------------

@dataclass
class Fig6Result:
    rows: List[dict] = field(default_factory=list)

    def total(self, system: str, dataset: str) -> int:
        for row in self.rows:
            if row["system"] == system and row["dataset"] == dataset:
                return row["total"]
        raise DataMissing((system, dataset))


def fig6_memory(num_keys: int = DEFAULT_KEYS,
                datasets=("u64", "email")) -> Fig6Result:
    """MN memory after bulk insert (paper Fig 6).

    Reports per-category bytes.  The paper's claims: the inner node hash
    table adds only 3.3% (u64) / 4.9% (email) over plain ART, while SMART
    consumes 2.1-3.0x ART's memory.
    """
    result = Fig6Result()
    for dataset_name in datasets:
        dataset = load_dataset(dataset_name, num_keys, insert_fraction=0.0)
        for system in ("ART", "SMART", "Sphinx"):
            setup = build_setup(system, dataset)
            cats = setup.cluster.mn_bytes_by_category()
            inner = cats.get("inner", 0)
            leaf = cats.get("leaf", 0)
            table = cats.get("hash_table", 0)
            result.rows.append({
                "system": system,
                "dataset": dataset_name,
                "inner": inner,
                "leaf": leaf,
                "hash_table": table,
                "total": inner + leaf + table,
            })
    return result


def render_fig6(result: Fig6Result) -> str:
    headers = ["dataset", "system", "inner MB", "leaf MB", "INHT MB",
               "total MB", "vs ART"]
    rows = []
    datasets = sorted({r["dataset"] for r in result.rows})
    for dataset_name in datasets:
        art_total = result.total("ART", dataset_name)
        for row in result.rows:
            if row["dataset"] != dataset_name:
                continue
            rows.append([
                dataset_name, row["system"],
                f"{row['inner'] / 1e6:.2f}", f"{row['leaf'] / 1e6:.2f}",
                f"{row['hash_table'] / 1e6:.3f}",
                f"{row['total'] / 1e6:.2f}",
                f"{row['total'] / art_total:.3f}x",
            ])
    out = [banner("Fig 6 - MN-side memory usage"),
           format_table(headers, rows)]
    for dataset_name in datasets:
        art = result.total("ART", dataset_name)
        sphinx = result.total("Sphinx", dataset_name)
        smart = result.total("SMART", dataset_name)
        out.append(
            f"{dataset_name}: INHT overhead {100 * (sphinx - art) / art:.1f}%"
            f" (paper: 3.3-4.9%), SMART {smart / art:.2f}x ART"
            f" (paper: 2.1-3.0x)")
    return "\n".join(out)


# ---------------------------------------------------------------------------
# Ablations (design choices called out in Sec. III)
# ---------------------------------------------------------------------------

def ablation_filter_cache(dataset_name: str = "email",
                          num_keys: int = DEFAULT_KEYS,
                          ops: int = DEFAULT_OPS,
                          workers: int = DEFAULT_WORKERS) -> List[dict]:
    """Sphinx with vs without the succinct filter cache (Sec. III-B).

    Without the filter the client reads Theta(L) hash entries per
    operation in one doorbell batch: same round trips, far more messages,
    earlier NIC saturation.
    """
    rows = []
    for system in ("Sphinx", "Sphinx-NoFilter"):
        dataset = load_dataset(dataset_name, num_keys)
        setup = build_setup(system, dataset)
        run = timed_run(setup, "C", workers=workers, ops=ops)
        rows.append(run.row())
    return rows


def ablation_scan_batching(dataset_name: str = "u64",
                           num_keys: int = DEFAULT_KEYS,
                           ops: int = 1_000,
                           workers: int = 24) -> List[dict]:
    """Doorbell batching in scans on vs off (Sec. V-B, range query)."""
    rows = []
    for batched in (True, False):
        dataset = load_dataset(dataset_name, num_keys)
        setup = build_setup("Sphinx", dataset)
        for cn in range(setup.cluster.config.num_cns):
            setup.index.client(cn).scan_batched = batched
        run = timed_run(setup, "E", workers=workers, ops=ops)
        row = run.row()
        row["system"] = f"Sphinx(batch={'on' if batched else 'off'})"
        rows.append(row)
    return rows


def ablation_hotness(num_keys: int = DEFAULT_KEYS) -> List[dict]:
    """Second-chance (hotness bit) vs plain random eviction under a filter
    too small for the prefix set (Sec. III-B's hot-prefix mechanism)."""
    import random

    from ..filters.hotness import SuccinctFilterCache

    rows = []
    rng = random.Random(0)
    hot = [f"hot{i}".encode() for i in range(256)]
    cold = [f"cold{i}".encode() for i in range(20_000)]
    for second_chance in (True, False):
        cache = SuccinctFilterCache(2_048, second_chance=second_chance)
        for h in hot:
            cache.insert(h)
        hits = 0
        probes = 0
        for round_no in range(10):
            for h in hot:
                hits += cache.contains(h)
                probes += 1
            for c in rng.sample(cold, 500):
                cache.insert(c)
        rows.append({
            "policy": "second-chance" if second_chance else "random",
            "hot_hit_rate": round(hits / probes, 4),
            "evictions": cache.evictions,
        })
    return rows


def ablation_cache_budget(dataset_name: str = "email",
                          num_keys: int = DEFAULT_KEYS,
                          ops: int = DEFAULT_OPS,
                          workers: int = DEFAULT_WORKERS) -> List[dict]:
    """CN cache-budget sensitivity (the paper's SMART vs SMART+C axis).

    Sphinx's filter is succinct (~1.6 B per inner prefix), so a tenth of
    the paper-scaled budget already tracks nearly every prefix; SMART's
    node cache needs orders of magnitude more bytes for the same effect
    (Sec. V-B: Sphinx beats SMART+C with 10% of its cache).
    """
    from ..baselines import SmartConfig, SmartIndex
    from ..core import SphinxConfig, SphinxIndex
    from ..dm import Cluster, ClusterConfig
    from ..ycsb import bulk_load

    base = scaled_cache_bytes(num_keys)
    rows = []
    for system, factor in (("Sphinx", 0.1), ("Sphinx", 1), ("Sphinx", 10),
                           ("SMART", 1), ("SMART", 10)):
        budget = max(256, int(base * factor))
        dataset = load_dataset(dataset_name, num_keys)
        cluster = Cluster(ClusterConfig())
        if system == "Sphinx":
            index = SphinxIndex(cluster, SphinxConfig(
                filter_budget_bytes=budget))
        else:
            index = SmartIndex(cluster, SmartConfig(
                cache_budget_bytes=budget))
        bulk_load(cluster, index, dataset)
        setup = SystemSetup(f"{system} x{factor}", cluster, index, dataset)
        run = timed_run(setup, "C", workers=workers, ops=ops)
        row = run.row()
        row["cache_budget_bytes"] = budget
        rows.append(row)
    return rows


def ablation_distribution_skew(dataset_name: str = "email",
                               num_keys: int = DEFAULT_KEYS,
                               ops: int = DEFAULT_OPS,
                               workers: int = DEFAULT_WORKERS) -> List[dict]:
    """Zipfian vs uniform requests.

    SMART's node cache thrives on skew (hot paths stay resident); the
    succinct filter cache tracks *every* prefix regardless of popularity,
    so Sphinx's advantage widens when the workload flattens.
    """
    from ..ycsb import WorkloadSpec, run_workload

    rows = []
    for system in ("SMART", "Sphinx"):
        dataset = load_dataset(dataset_name, num_keys)
        setup = build_setup(system, dataset)
        for distribution in ("zipfian", "uniform"):
            spec = WorkloadSpec(f"C-{distribution}", read=1.0,
                                distribution=distribution)
            run = run_workload(setup.cluster, setup.index, spec, dataset,
                               system=system, workers=workers, ops=ops,
                               warmup_ops_per_cn=2_000)
            rows.append(run.row())
    return rows


def ablation_depth_scaling(dataset_name: str = "u64",
                           sizes=(15_000, 30_000, 60_000, 120_000),
                           probe_ops: int = 400) -> List[dict]:
    """Round trips per search vs dataset size (tree depth).

    The paper runs at 60 M keys where the ART is 4+ levels deep; our
    simulated datasets are necessarily smaller and shallower, which
    *underestimates* traversal-based systems' costs.  This ablation
    measures the trend: Sphinx stays at ~3 round trips regardless of
    size while ART/SMART grow with depth - the extrapolation that links
    our small-scale numbers to the paper's.
    """
    import random

    from ..dm.rdma import OpStats
    from ..obs import Counters

    rows = []
    for size in sizes:
        dataset = load_dataset(dataset_name, size, insert_fraction=0.0)
        for system in ("ART", "SMART", "Sphinx"):
            setup = build_setup(system, dataset)
            # Warm caches, then count verbs over zipfian reads.
            rng = random.Random(5)
            client = setup.index.client(0)
            executor = setup.cluster.direct_executor()
            for _ in range(min(4_000, size)):
                executor.run(client.search(
                    dataset.keys[rng.randrange(size)]))
            stats = OpStats()
            counted = setup.cluster.direct_executor(stats)
            for _ in range(probe_ops):
                counted.run(client.search(
                    dataset.keys[rng.randrange(size)]))
            per_op = Counters.from_opstats(stats).per_op(probe_ops)
            rows.append({
                "dataset": dataset_name,
                "keys": size,
                "system": system,
                "rts_per_search": round(per_op["round_trips"], 3),
                "bytes_per_search": round(per_op["bytes_read"], 1),
            })
    return rows


def ablation_locator_budget(dataset_name: str = "u64",
                            num_keys: int = DEFAULT_KEYS,
                            ops: int = DEFAULT_OPS,
                            workers: int = DEFAULT_WORKERS,
                            factors=(0.1, 0.5, 1, 4),
                            probe_ops: int = 400) -> List[dict]:
    """Leaf-locator vs filter-cache budget crossover (DESIGN.md §12).

    Sphinx's filter cache spends its CN bytes on *inner prefixes* (about
    1.6 B each) and always pays the INHT probe plus the leaf read; the
    locator tier spends 16 B per *key* but answers a hit in one READ.
    This family sweeps the same scaled CN budget across both designs:
    small budgets favour the succinct filter (coverage per byte), large
    ones the locator (round trips per hit) - the crossover is the
    quantity the table renders.  An Outback row anchors the far end: its
    MPH directory covers every key at ~12 B/key and is always 1 RTT.

    Each row carries the timed YCSB-C throughput plus a warmed-client
    round-trips-per-search probe (same technique as
    :func:`ablation_depth_scaling`), so the crossover is visible in both
    throughput and RTTs even when the simulated fabric is not the
    bottleneck.
    """
    import random

    from ..core import SphinxConfig, SphinxIndex
    from ..dm import Cluster, ClusterConfig
    from ..dm.rdma import OpStats
    from ..obs import Counters
    from ..ycsb import bulk_load

    base = scaled_cache_bytes(num_keys)
    rows = []

    def _measure(label: str, index, cluster, dataset,
                 budget: Optional[int]) -> None:
        bulk_load(cluster, index, dataset)
        setup = SystemSetup(label, cluster, index, dataset)
        run = timed_run(setup, "C", workers=workers, ops=ops)
        # Warmed single-client probe: count verbs over zipfian reads.
        rng = random.Random(11)
        client = setup.index.client(0)
        executor = setup.cluster.direct_executor()
        for _ in range(min(4_000, dataset.size)):
            executor.run(client.search(
                dataset.keys[rng.randrange(dataset.size)]))
        stats = OpStats()
        counted = setup.cluster.direct_executor(stats)
        for _ in range(probe_ops):
            counted.run(client.search(
                dataset.keys[rng.randrange(dataset.size)]))
        per_op = Counters.from_opstats(stats).per_op(probe_ops)
        row = run.row()
        row["system"] = label
        if budget is None:
            # Outback: CN spend is the (shared) MPH directory itself.
            budget = index.dir_bytes()
        row["cn_budget_bytes"] = budget
        row["rts_per_search"] = round(per_op["round_trips"], 3)
        rows.append(row)

    for factor in factors:
        budget = max(256, int(base * factor))
        dataset = load_dataset(dataset_name, num_keys)
        cluster = Cluster(ClusterConfig())
        _measure(f"Sphinx x{factor}",
                 SphinxIndex(cluster, SphinxConfig(
                     filter_budget_bytes=budget)),
                 cluster, dataset, budget)
        dataset = load_dataset(dataset_name, num_keys)
        cluster = Cluster(ClusterConfig())
        _measure(f"Sphinx+Loc x{factor}",
                 SphinxIndex(cluster, SphinxConfig(
                     filter_budget_bytes=budget, use_locator=True,
                     locator_budget_bytes=budget)),
                 cluster, dataset, budget)
    from ..baselines import OutbackIndex
    dataset = load_dataset(dataset_name, num_keys)
    cluster = Cluster(ClusterConfig())
    _measure("Outback", OutbackIndex(cluster), cluster, dataset, None)
    return rows


# ---------------------------------------------------------------------------
# RTT histograms (per-op round-trip distribution from profiled cells)
# ---------------------------------------------------------------------------

def rtt_histograms(traces: Dict[str, object]) -> Dict[str, Dict[str, Dict[int, int]]]:
    """Round-trip histograms per op name, from profiled cells' tracers.

    ``traces`` maps cell labels to finished :class:`repro.obs.Tracer`
    objects (``Fig4Result.traces`` / ``Fig5Result.traces``).  Returns
    ``{cell: {op: {round_trips: span_count}}}`` - the distribution the
    locator work is judged by: a locator/directory hit is the spans in
    the ``1`` bucket, fallbacks are the tail.
    """
    out: Dict[str, Dict[str, Dict[int, int]]] = {}
    for label, tracer in traces.items():
        per_op: Dict[str, Dict[int, int]] = {}
        for span in getattr(tracer, "spans", ()):
            if span.t_end < 0:
                continue
            hist = per_op.setdefault(span.name, {})
            hist[span.round_trips] = hist.get(span.round_trips, 0) + 1
        out[label] = per_op
    return out


def render_rtt_histograms(histograms: Dict[str, Dict[str, Dict[int, int]]],
                          max_bucket: int = 8) -> str:
    """Text table of the per-op RTT distribution for every profiled cell.

    Buckets past ``max_bucket`` fold into a ``>N`` column so deep-retry
    tails stay visible without unbounded width.
    """
    headers = ["cell", "op", "spans"] + \
        [str(i) for i in range(max_bucket + 1)] + [f">{max_bucket}"]
    rows = []
    for label in sorted(histograms):
        for op_name in sorted(histograms[label]):
            hist = histograms[label][op_name]
            total = sum(hist.values())
            buckets = [0] * (max_bucket + 2)
            for rtts, count in hist.items():
                buckets[min(rtts, max_bucket + 1)] += count
            rows.append([label, op_name, total] + buckets)
    out = [banner("RTT histogram - round trips per op (profiled cells)"),
           format_table(headers, rows)]
    return "\n".join(out)


def ablation_fingerprint_bits() -> List[dict]:
    """False-positive rate vs fingerprint width (paper: >=10 bits -> <1%)."""
    from ..filters.cuckoo import CuckooFilter

    rows = []
    for bits in (4, 6, 8, 10, 12, 16):
        filt = CuckooFilter(20_000, fp_bits=bits)
        for i in range(18_000):
            filt.insert(f"m{i}".encode())
        false_positives = sum(filt.contains(f"x{i}".encode())
                              for i in range(50_000))
        rows.append({
            "fp_bits": bits,
            "fp_rate": round(false_positives / 50_000, 5),
            "bound": round(filt.expected_fp_rate(), 5),
            "bytes_per_item": round(filt.size_bytes() / filt.count, 3),
        })
    return rows
