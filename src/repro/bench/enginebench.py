"""Microbenchmarks of the event core: how fast does the simulator *run*?

Four patterns stress the distinct hot paths of the ISSUE 7 engine rework,
each driven through the production entry points (``SimExecutor`` /
``Engine.run_until_complete``), not synthetic inner loops:

* ``ping-pong`` - one client issuing sequential 8-byte READ verbs: the
  scalar verb-trip path (idle-engine closed form when numpy is on).
* ``doorbell`` - one client posting same-MN doorbell batches of 16
  reads: the whole-batch closed form / member-trip path.
* ``timeout-storm`` - many pure-engine processes cycling prime-length
  timeouts: heap churn, macro-batch draining, and the timeout pool.
* ``fifo-saturation`` - many workers hammering one FIFO station:
  contended-queue dispatch plus ``FifoServer`` accounting.

Each pattern reports host wall seconds, engine events processed, and
**events per wall second** - the headline metric of the rework.  The
JSON report uses the same ``BENCH_2`` schema as the grid benchmarks, so
``python -m repro.bench.perftrack report.json --compare baseline.json``
diffs it directly::

    python -m repro.bench.enginebench --ops 200000 --out engine.json

Wall-clock numbers are min-of-``--repeat`` to shave scheduler noise;
simulated results are deterministic and identical across repeats.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time
from typing import Callable, Dict, List, Optional, Tuple

from ..dm.cluster import Cluster, ClusterConfig
from ..dm.network import vector_enabled
from ..dm.rdma import Batch, ReadOp
from ..sim import Engine, FifoServer

DOORBELL_WIDTH = 16
STORM_PROCS = 64
SAT_WORKERS = 128

#: (events, wall_s, sim_ns) of one pattern run.
Sample = Tuple[int, float, int]


def _tiny_cluster() -> Cluster:
    return Cluster(ClusterConfig(mn_capacity_bytes=1 << 20))


def bench_ping_pong(ops: int) -> Sample:
    """Sequential scalar READ verbs from a single client."""
    cluster = _tiny_cluster()
    addr = cluster.alloc(0, 8)
    sx = cluster.sim_executor(0)
    engine = cluster.engine

    def client():
        for _ in range(ops):
            yield ReadOp(addr, 8)

    proc = engine.process(sx.run(client()), name="ping-pong")
    start = time.perf_counter()
    engine.run_until_complete(proc)
    wall = time.perf_counter() - start
    return engine.events_processed, wall, engine.now


def bench_doorbell(ops: int) -> Sample:
    """Same-MN doorbell batches of DOORBELL_WIDTH reads."""
    cluster = _tiny_cluster()
    addrs = [cluster.alloc(0, 8) for _ in range(DOORBELL_WIDTH)]
    sx = cluster.sim_executor(0)
    engine = cluster.engine
    batches = max(1, ops // DOORBELL_WIDTH)

    def client():
        template = [ReadOp(a, 8) for a in addrs]
        for _ in range(batches):
            yield Batch(template)

    proc = engine.process(sx.run(client()), name="doorbell")
    start = time.perf_counter()
    engine.run_until_complete(proc)
    wall = time.perf_counter() - start
    return engine.events_processed, wall, engine.now


def bench_timeout_storm(ops: int) -> Sample:
    """Many processes cycling co-prime delays: pure engine dispatch."""
    engine = Engine()
    steps = max(1, ops // STORM_PROCS)
    primes = [3, 5, 7, 11, 13, 17, 19, 23]

    def cycler(delay):
        for _ in range(steps):
            yield engine.timeout(delay)

    procs = [engine.process(cycler(primes[i % len(primes)]),
                            name=f"storm{i}")
             for i in range(STORM_PROCS)]
    start = time.perf_counter()
    for proc in procs:
        engine.run_until_complete(proc)
    wall = time.perf_counter() - start
    return engine.events_processed, wall, engine.now


def bench_fifo_saturation(ops: int) -> Sample:
    """Many workers contending for one FIFO station."""
    engine = Engine()
    server = FifoServer(engine, "sat.nic", capacity=1)
    jobs = max(1, ops // SAT_WORKERS)

    def worker(svc):
        for _ in range(jobs):
            yield server.submit(svc)

    procs = [engine.process(worker(20 + (i % 7)), name=f"w{i}")
             for i in range(SAT_WORKERS)]
    start = time.perf_counter()
    for proc in procs:
        engine.run_until_complete(proc)
    wall = time.perf_counter() - start
    return engine.events_processed, wall, engine.now


PATTERNS: Dict[str, Tuple[Callable[[int], Sample], int]] = {
    # name -> (runner, workers-for-the-record)
    "ping-pong": (bench_ping_pong, 1),
    "doorbell": (bench_doorbell, 1),
    "timeout-storm": (bench_timeout_storm, STORM_PROCS),
    "fifo-saturation": (bench_fifo_saturation, SAT_WORKERS),
}


def run_pattern(name: str, ops: int, repeat: int = 3) -> dict:
    """Run one pattern ``repeat`` times; returns a BENCH_2 cell record
    with min-wall host numbers (simulated results are deterministic)."""
    runner, workers = PATTERNS[name]
    best: Optional[Sample] = None
    for _ in range(max(1, repeat)):
        events, wall, sim_ns = runner(ops)
        if best is None or wall < best[1]:
            best = (events, wall, sim_ns)
    events, wall, sim_ns = best
    if os.environ.get("REPRO_SIM_SLOW", "") == "1":
        mode = "slow"
    else:
        mode = "fast" if vector_enabled() else "fast-novector"
    return {
        "system": "engine",
        "dataset": "core",
        "workload": name,
        "workers": workers,
        "ops": ops,
        "wall_s": round(wall, 4),
        "events": events,
        "events_per_s": round(events / wall) if wall > 0 else 0,
        "engine_mode": mode,
        "sim_ns": sim_ns,
    }


def report(cells: List[dict]) -> dict:
    return {
        "schema": "BENCH_2",
        "total_wall_s": round(sum(c["wall_s"] for c in cells), 3),
        "total_events": sum(c["events"] for c in cells),
        "cells": cells,
    }


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro.bench.enginebench",
        description="Event-core microbenchmarks (events per wall second).")
    parser.add_argument("--ops", type=int, default=200_000,
                        help="approximate op count per pattern "
                             "(default 200000)")
    parser.add_argument("--repeat", type=int, default=3,
                        help="runs per pattern; wall time is the min "
                             "(default 3)")
    parser.add_argument("--pattern", action="append", choices=PATTERNS,
                        help="run only this pattern (repeatable; "
                             "default all)")
    parser.add_argument("--out", metavar="PATH",
                        help="write a BENCH_2 JSON report here")
    args = parser.parse_args(argv)
    names = args.pattern or list(PATTERNS)
    cells = []
    print(f"{'pattern':<16} {'ops':>9} {'events':>10} {'wall_s':>8} "
          f"{'events/s':>12}")
    for name in names:
        cell = run_pattern(name, args.ops, args.repeat)
        cells.append(cell)
        print(f"{name:<16} {cell['ops']:>9} {cell['events']:>10} "
              f"{cell['wall_s']:>8.3f} {cell['events_per_s']:>12,}")
    rep = report(cells)
    print(f"total: {rep['total_events']} events in "
          f"{rep['total_wall_s']:.3f}s")
    if args.out:
        with open(args.out, "w") as fh:
            json.dump(rep, fh, indent=2, sort_keys=True)
            fh.write("\n")
        print(f"wrote {args.out}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
